//! One shard of the sharded engine: the peers it owns, its local event queue,
//! and the event handlers (ported from the former monolithic engine).
//!
//! A shard only ever mutates *its own* state while draining a window: its
//! peers (slot-indexed vectors), its query slabs, its tallies and its
//! outboxes. Everything else it touches is read-only shared substrate
//! ([`RunShared`]) or the frozen-per-window graph/online views. That ownership
//! discipline is what lets every shard drain concurrently with no locks on
//! the event path.
//!
//! Per-query bookkeeping is kept in **dense slabs keyed by arrival index**
//! (the query id *is* the arrival index): `tracking` for origin-local fields,
//! `messages` for per-query traffic charged at any forwarding peer, and
//! `hits` for first-answer candidates recorded at any answering peer. The
//! latter two are written by whichever shard processes the event and merged
//! commutatively (sum, min-by-key) in finalize.
//!
//! ## Query lifecycle
//!
//! Every query-charged send increments the query's outstanding-message count
//! and every consumed delivery decrements it (consumed means *dispatched* —
//! TTL-dropped, duplicate-suppressed and offline-receiver deliveries all
//! consume their message). The count hitting zero is the query's
//! **completion**, a canonical class-4 event at the consuming delivery's
//! time (see [`super::exchange`]): `completed_at` is recorded and the
//! query's entry is pruned from the `issued` duplicate-suppression map, so a
//! later re-query for the same file is legal the moment the original search
//! actually died — not after the old `2·ttl·max_latency` worst-case bound.
//! A query whose traffic never leaves its origin shard completes *inline*
//! (the `outstanding`/`escaped` slabs below): all its events drain here in
//! key order, so the local count is exact. Once a message escapes through an
//! outbox the shard stops concluding anything locally and the coordinator
//! detects completion by folding the per-shard [`LifecycleFlux`] at
//! barriers.

use std::collections::{BTreeMap, HashMap};

use rand::rngs::StdRng;

use locaware_bloom::ElementHashes;
use locaware_net::LocId;
use locaware_overlay::routing::decrement_ttl;
use locaware_overlay::{Message, MessageKind, OverlayGraph, PeerId, ProviderEntry, QueryId};
use locaware_sim::{Duration, EventKey, ShardQueue, SimTime, StreamId};
use locaware_workload::{FileId, KeywordId};

use crate::config::ProtocolKind;
use crate::peer::PeerState;
use crate::protocol::{PeerView, QueryContext, ResponseContext};
use crate::provider::select_provider;

use super::dht::{DhtLookupState, DirectoryScratch};
use super::exchange::{deliver_key, timeout_key, Outbound, LOST_BIT};
use super::tally::{decision_index, kind_index, LifecycleFlux, Tallies};
use super::RunShared;

/// A shard-local event. Periodic maintenance (Bloom sync) and churn are
/// global transitions handled serially at window barriers by the coordinator,
/// so they never appear in shard queues.
#[derive(Debug, Clone)]
pub(super) enum ShardEvent {
    /// The `i`-th pre-generated arrival fires: its peer issues a query.
    Issue(u32),
    /// A message arrives at `to`, having been sent by `from`.
    ///
    /// A message the fault plan dropped at send time still occupies its
    /// canonical delivery position (fixing *when* the loss is observed) but
    /// is consumed without being processed; it is marked by
    /// [`LOST_BIT`](super::exchange::LOST_BIT) in `from` rather than a
    /// separate flag, which would push the event (and with it every queue
    /// entry) over the two-cache-line boundary the flooding hot path is
    /// sized to.
    Deliver {
        /// Sending peer, possibly tagged with `LOST_BIT`.
        from: PeerId,
        /// Receiving peer.
        to: PeerId,
        /// The message.
        message: Message,
    },
    /// A fault-plan deadline fires for query `index`. Timers live in the
    /// waiting peer's own shard queue (origin-local, never cross-shard) and
    /// are charged into the query's lifecycle like in-flight messages, so
    /// completions stay exact while a deadline is armed.
    Timeout {
        /// The query's arrival index.
        index: u32,
        /// Which deadline fired.
        kind: TimeoutKind,
    },
}

// Every queued event is copied at least once per hop on the flooding hot
// path; a grown variant silently taxes every message of every run.
const _: () = assert!(
    std::mem::size_of::<ShardEvent>() <= 96,
    "ShardEvent grew past 96 bytes"
);

/// Which fault-plan deadline a [`ShardEvent::Timeout`] represents.
#[derive(Debug, Clone, Copy)]
pub(super) enum TimeoutKind {
    /// The retransmit deadline of 0-based unstructured query attempt
    /// `attempt`.
    Retransmit {
        /// The attempt whose deadline this is.
        attempt: u32,
    },
    /// The deadline of a DHT lookup step awaiting `peer`'s reply.
    DhtStep {
        /// The index node the step was sent to.
        peer: PeerId,
    },
}

/// Recovers the arrival index from a query id. Retransmitted attempts reuse
/// the arrival index in the low 32 bits and count the attempt in the high
/// bits — a fresh id per attempt gives every retransmit its own
/// duplicate-suppression and reverse-path state in [`QueryRouter`] with no
/// router changes, while every per-query slab keys on the masked index.
///
/// [`QueryRouter`]: locaware_overlay::routing::QueryRouter
pub(super) fn query_index(query: QueryId) -> usize {
    (query.0 & 0xffff_ffff) as usize
}

/// The query id of `index`'s 0-based attempt `attempt` (attempt 0 is the
/// original issue, whose id is the bare arrival index).
fn attempt_id(index: usize, attempt: u32) -> QueryId {
    QueryId(index as u64 | (u64::from(attempt) << 32))
}

/// Origin-local per-query bookkeeping (lives in the origin peer's shard).
#[derive(Debug)]
pub(super) struct QueryTracking {
    pub origin: PeerId,
    pub origin_loc: LocId,
    /// The Zipf target the query searches for; keys the `issued` entry that
    /// the completion prunes.
    pub target: FileId,
    pub satisfied: bool,
    pub download_distance_ms: Option<f64>,
    pub locality_match: bool,
    pub providers_offered: usize,
    /// When the query's last in-flight message was consumed — the time of its
    /// canonical class-4 completion event. `None` only if the run was
    /// truncated by the event budget while messages were still travelling.
    pub completed_at: Option<SimTime>,
    /// Provider-selection randomness, one independent stream per query so the
    /// draw sequence is a pure function of (seed, arrival index, response
    /// arrival order at the origin) — never of shard layout.
    pub selection_rng: StdRng,
    /// Whether the query resolved through the DHT (structured protocols, and
    /// for the hybrid only tail-rank targets).
    pub dht_lookup: bool,
    /// Deepest lookup hop whose reply reached the origin (0 = answered from
    /// the origin's own record store, or no reply at all).
    pub dht_depth: u32,
    /// Retransmit state — `Some` exactly while a fault plan's query-timeout
    /// policy has a deadline armed for this (unstructured) query.
    pub retry: Option<RetryState>,
}

/// Origin-side retransmit state of one unstructured query under a fault
/// plan's [`TimeoutPolicy`](locaware_workload::TimeoutPolicy).
#[derive(Debug)]
pub(super) struct RetryState {
    /// The query's keyword list, kept so a deadline can rebuild the wire
    /// message (the workload draw must not be repeated — re-drawing would
    /// desynchronise the per-arrival RNG stream).
    pub keywords: Vec<KeywordId>,
    /// The Dicas target filename carried on the wire, if any.
    pub target_filename: Option<FileId>,
    /// The 0-based attempt whose deadline is currently armed.
    pub attempt: u32,
}

/// A local-match candidate for "first answer wins" semantics: the shard-local
/// first hit (events drain in key order, so set-once is the shard minimum);
/// finalize takes the key-minimum across shards.
#[derive(Debug, Clone, Copy)]
pub(super) struct HitMark {
    pub key: EventKey,
    pub hops: u32,
    pub from_cache: bool,
}

/// Everything one shard owns.
pub(super) struct ShardState {
    /// This shard's index.
    pub shard: u32,
    /// Owned peers, indexed by partition slot.
    pub peers: Vec<PeerState>,
    /// The shard-local event queue in canonical key order.
    pub queue: ShardQueue<ShardEvent>,
    /// Cross-shard messages awaiting the next barrier, one bucket per
    /// destination shard (this shard's own bucket stays empty).
    pub outboxes: Vec<Vec<Outbound>>,
    /// Arrival index → origin-local tracking, for queries issued by this
    /// shard's peers. A map rather than an arrivals-sized slab: each entry
    /// exists in exactly one shard (the origin's), and `QueryTracking` is fat
    /// (it inlines the per-query selection RNG), so slab-per-shard would cost
    /// O(shards × arrivals) memory for (shards−1)/shards empty slots. The
    /// `messages`/`hits` slabs below stay dense: they are genuinely written
    /// by every shard and merged commutatively, and their entries are small.
    pub tracking: HashMap<u32, QueryTracking>,
    /// Arrival index → the origin-driven iterative DHT lookup still walking
    /// for that query (origin shard only, structured protocols only). An
    /// entry exists exactly while the walk is live: satisfaction, shortlist
    /// exhaustion and query completion each remove it.
    pub dht_lookups: HashMap<u32, DhtLookupState>,
    /// Arrival index → messages this shard charged to the query.
    pub messages: Vec<u64>,
    /// Arrival index → this shard's earliest local-match candidate.
    pub hits: Vec<Option<HitMark>>,
    /// Slot → (target file → arrival index), the in-flight duplicate-query
    /// guard of the owning peer. An entry exists exactly while that query is
    /// genuinely in flight: the completion transition removes it, so the map
    /// stays bounded by the peer's concurrent-query count over any horizon.
    pub issued: Vec<HashMap<FileId, u32>>,
    /// Arrival index → this shard's net outstanding-message count for the
    /// query (sends − consumptions it processed). Exact — and equal to the
    /// global count — while the query has never escaped its origin shard;
    /// can dip below zero in non-origin shards, which consume messages they
    /// never sent.
    pub outstanding: Vec<i64>,
    /// Arrival index → true once this shard outboxed one of the query's
    /// messages. In the origin shard this disables inline completion.
    pub escaped: Vec<bool>,
    /// Per-query lifecycle deltas folded by the coordinator at barriers.
    /// `None` in single-shard runs, where inline completion is always exact
    /// and the hot path skips flux recording entirely.
    pub flux: Option<LifecycleFlux>,
    /// Arrival indexes whose Issue event this shard dispatched since the
    /// last barrier (including skipped arrivals). Multi-shard only; the
    /// coordinator drains it to advance its pending-arrival scan.
    pub processed_arrivals: Vec<u32>,
    /// The upper bound of the window this shard is currently draining, set by
    /// the coordinator while holding every shard lock at the barrier. With
    /// per-channel lookahead each shard gets its own bound.
    pub window_bound: EventKey,
    /// Slot → messages sent so far by that peer: the sender-side sequence
    /// feeding [`deliver_key`]. Monotone in the sender's (deterministic)
    /// event order, so it FIFO-orders any two deliveries that tie on
    /// `(time, to, from)` — a plain vector index on the hottest path.
    pub send_seq: Vec<u64>,
    /// Additive statistics.
    pub tallies: Tallies,
    /// Events dispatched by this shard so far.
    pub dispatched: u64,
    /// Time of the last event this shard dispatched.
    pub last_event_time: SimTime,
    // Scratch buffers reused across events so the forward path does not
    // allocate: decoded query keywords, their hashes, and forward targets.
    scratch_keywords: Vec<KeywordId>,
    scratch_hashes: Vec<ElementHashes>,
    scratch_targets: Vec<PeerId>,
    // Scratch for the publish path's directory lookups: the trie-search
    // frontier/best buffers plus the resolved store targets, reused across
    // publishes so the lookup path never allocates per call.
    scratch_directory: DirectoryScratch,
    scratch_publish_targets: Vec<PeerId>,
}

impl ShardState {
    pub(super) fn new(shard: u32, shards: usize, peers: Vec<PeerState>, arrivals: usize) -> Self {
        let peer_count = peers.len();
        ShardState {
            shard,
            issued: peers.iter().map(|_| HashMap::new()).collect(),
            peers,
            queue: ShardQueue::new(),
            outboxes: (0..shards).map(|_| Vec::new()).collect(),
            tracking: HashMap::new(),
            dht_lookups: HashMap::new(),
            messages: vec![0; arrivals],
            hits: vec![None; arrivals],
            outstanding: vec![0; arrivals],
            escaped: vec![false; arrivals],
            flux: (shards > 1).then(|| LifecycleFlux::new(arrivals)),
            processed_arrivals: Vec::new(),
            window_bound: EventKey::MAX,
            send_seq: vec![0; peer_count],
            tallies: Tallies::new(),
            dispatched: 0,
            last_event_time: SimTime::ZERO,
            scratch_keywords: Vec::new(),
            scratch_hashes: Vec::new(),
            scratch_targets: Vec::new(),
            scratch_directory: DirectoryScratch::default(),
            scratch_publish_targets: Vec::new(),
        }
    }

    /// Drains every local event strictly below `self.window_bound` (set by
    /// the coordinator at the barrier), dispatching at most `cap` events
    /// (the run-wide event budget's share for this window).
    pub(super) fn drain(&mut self, shared: &RunShared<'_>, cap: u64) {
        if cap == 0 {
            return;
        }
        let bound = self.window_bound;
        let graph = shared.graph.read();
        let online = shared.online.read();
        let mut dispatched = 0u64;
        while dispatched < cap {
            let Some((key, event)) = self.queue.pop_before(bound) else {
                break;
            };
            dispatched += 1;
            debug_assert!(key.time >= self.last_event_time || self.dispatched == 0);
            self.last_event_time = key.time;
            match event {
                ShardEvent::Issue(index) => {
                    self.handle_issue(shared, &graph, &online, key, index as usize)
                }
                ShardEvent::Deliver { from, to, message } => {
                    let lost = from.0 & LOST_BIT != 0;
                    let from = PeerId(from.0 & !LOST_BIT);
                    self.handle_deliver(shared, &graph, &online, key, from, to, message, lost)
                }
                ShardEvent::Timeout { index, kind } => {
                    self.handle_timeout(shared, &graph, key, index as usize, kind)
                }
            }
        }
        self.dispatched += dispatched;
    }

    fn view<'v>(&'v self, graph: &'v OverlayGraph, shared: &'v RunShared<'_>, slot: usize) -> PeerView<'v> {
        PeerView {
            state: &self.peers[slot],
            graph,
            scheme: &shared.scheme,
            catalog: shared.catalog,
        }
    }

    // --- event handlers -----------------------------------------------------

    fn handle_issue(
        &mut self,
        shared: &RunShared<'_>,
        graph: &OverlayGraph,
        online: &[bool],
        key: EventKey,
        index: usize,
    ) {
        let origin = PeerId(shared.arrivals[index].peer as u32);
        debug_assert_eq!(shared.partition.shard(origin), self.shard as usize);
        // Every dispatched Issue — skipped or not — retires its arrival from
        // the coordinator's pending scan.
        if self.flux.is_some() {
            self.processed_arrivals.push(index as u32);
        }
        let slot = shared.partition.slot(origin);
        if !self.peers[slot].online {
            return;
        }
        // Peers query for files they do not already hold and are not already
        // querying (a duplicate of an in-flight query could be satisfied
        // without creating a second replica, which would break the replica
        // accounting). "In flight" is exact: an entry lives in `issued` from
        // issue until the query's completion event prunes it, so a failed
        // search may be retried the moment it actually dies — keeping the
        // effective workload Zipf-shaped. Re-draw a few times; if the Zipf
        // draws keep colliding, deterministically fall back to the most
        // popular file the requestor can still legitimately search for.
        //
        // All randomness here comes from a stream derived per arrival index,
        // so the draw sequence — including the state-dependent redraw count —
        // is independent of every other arrival and of the shard layout.
        let now = key.time;
        let excluded = |state: &PeerState, issued: &HashMap<FileId, u32>, target: FileId| {
            state.has_file(target) || issued.contains_key(&target)
        };
        let mut workload_rng = shared
            .rng_factory
            .indexed_stream(StreamId::QueryWorkload, index as u64);
        let generator = shared.query_generator;
        let mut query = generator.generate(shared.catalog, &mut workload_rng);
        for _ in 0..16 {
            if !excluded(&self.peers[slot], &self.issued[slot], query.target) {
                break;
            }
            query = generator.generate(shared.catalog, &mut workload_rng);
        }
        if excluded(&self.peers[slot], &self.issued[slot], query.target) {
            let Some(target) = (0..shared.catalog.len())
                .map(|rank| generator.file_at_rank(rank))
                .find(|&t| !excluded(&self.peers[slot], &self.issued[slot], t))
            else {
                // The peer holds or is already querying every file in the
                // catalog (tiny catalogs, long horizons): there is nothing it
                // can meaningfully search for, so the arrival is skipped just
                // like an offline peer's.
                return;
            };
            query = generator.generate_for_target(shared.catalog, target, &mut workload_rng);
        }
        self.issued[slot].insert(query.target, index as u32);

        // The query id *is* the arrival index — dense, globally unique and
        // identical for every shard count.
        let query_id = QueryId(index as u64);
        self.tallies.queries_issued += 1;

        let origin_loc = shared.loc_ids[origin.index()];
        self.tracking.insert(index as u32, QueryTracking {
            origin,
            origin_loc,
            target: query.target,
            satisfied: false,
            download_distance_ms: None,
            locality_match: false,
            providers_offered: 0,
            completed_at: None,
            selection_rng: shared
                .rng_factory
                .indexed_stream(StreamId::ProtocolTieBreak, index as u64),
            dht_lookup: false,
            dht_depth: 0,
            retry: None,
        });

        // The originator registers the query locally (no upstream).
        self.peers[slot].router.on_query(query_id, None);

        let structured = shared.protocol.uses_dht()
            && shared.protocol.dht_resolves_rank(
                shared.query_generator.rank_of(query.target),
                shared.catalog.len(),
            );
        if structured {
            // Structured resolution: the query never touches the overlay —
            // it walks the keyword DHT instead (no forward decision either;
            // routing-decision counters are an overlay concept).
            self.dht_issue(shared, online, key, index, slot, query_id, &query.keywords);
        } else {
            let target_filename = if shared.protocol.kind() == ProtocolKind::Dicas {
                Some(query.target)
            } else {
                None
            };
            shared
                .keyword_hashes
                .of_all_into(&query.keywords, &mut self.scratch_hashes);
            let mut targets = std::mem::take(&mut self.scratch_targets);
            let decision = {
                let qctx = QueryContext {
                    query: query_id,
                    origin,
                    origin_loc,
                    keywords: &query.keywords,
                    keyword_hashes: &self.scratch_hashes,
                    target_filename,
                };
                let view = self.view(graph, shared, slot);
                shared
                    .protocol
                    .forward_targets_into(&view, &qctx, None, &mut targets)
            };
            self.tallies.decision_counts[decision_index(decision)] += 1;

            let message = Message::Query {
                query: query_id,
                origin,
                origin_loc,
                keywords: query.keywords.iter().map(|k| k.0).collect(),
                target_filename: target_filename.map(|f| f.0),
                ttl: shared.config.ttl,
            };
            for &target in &targets {
                self.send(shared, now, origin, target, message.clone(), Some(index));
            }
            let sent = !targets.is_empty();
            targets.clear();
            self.scratch_targets = targets;
            // Arm the retransmit deadline for attempt 0 — only if the issue
            // actually put messages in flight (a query with no forward
            // targets is born complete and retrying it would re-flood into
            // the same emptiness).
            if sent {
                if let Some(policy) = shared.faults.as_ref().and_then(|f| f.query_retransmit()) {
                    let deadline = now + Duration::from_secs_f64(policy.delay_secs(0));
                    if let Some(tracking) = self.tracking.get_mut(&(index as u32)) {
                        tracking.retry = Some(RetryState {
                            keywords: query.keywords.clone(),
                            target_filename,
                            attempt: 0,
                        });
                    }
                    self.schedule_timeout(deadline, index, TimeoutKind::Retransmit { attempt: 0 });
                }
            }
        }

        // A query with no in-flight traffic is born complete — no forward
        // targets, or a DHT query answered from (or exhausted at) the
        // origin's own state: its completion event coincides with the issue
        // (class 4 at `now`, which every later event already orders after).
        if self.outstanding[index] == 0 && !self.escaped[index] {
            self.complete_locally(shared, index, now);
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn handle_deliver(
        &mut self,
        shared: &RunShared<'_>,
        graph: &OverlayGraph,
        online: &[bool],
        key: EventKey,
        from: PeerId,
        to: PeerId,
        message: Message,
        lost: bool,
    ) {
        debug_assert_eq!(shared.partition.shard(to), self.shard as usize);
        // Lifecycle accounting brackets the handler: a query-charged delivery
        // is *consumed* by being dispatched, whatever then happens to it —
        // offline receiver, duplicate suppression, TTL exhaustion and
        // fault-plan loss all end this message's flight. The zero check must
        // wait until the handler has run, though: consumption and the sends
        // it triggers (forwarded copies, a response) are one atomic event, so
        // a count that touches zero mid-event is not a completion — only the
        // post-event count is.
        let consumed = match &message {
            Message::Query { query, .. }
            | Message::QueryResponse { query, .. }
            | Message::DhtLookup { query, .. }
            | Message::DhtLookupReply { query, .. } => {
                let index = query_index(*query);
                self.outstanding[index] -= 1;
                if let Some(flux) = &mut self.flux {
                    flux.consume(index, key);
                }
                Some(index)
            }
            _ => None,
        };
        if !lost {
            self.process_delivery(shared, graph, online, key, from, to, message);
        }
        if let Some(index) = consumed {
            if self.outstanding[index] == 0 && !self.escaped[index] {
                // This delivery was the query's last in-flight message and
                // spawned nothing: its time is the completion time. Exact
                // only in the origin shard of a never-escaped query (the
                // local count then equals the global count);
                // `complete_locally` is a no-op elsewhere.
                self.complete_locally(shared, index, key.time);
            }
        }
    }

    /// The protocol-visible half of a delivery, after lifecycle consumption
    /// and before the completion check in [`ShardState::handle_deliver`].
    #[allow(clippy::too_many_arguments)]
    fn process_delivery(
        &mut self,
        shared: &RunShared<'_>,
        graph: &OverlayGraph,
        online: &[bool],
        key: EventKey,
        from: PeerId,
        to: PeerId,
        message: Message,
    ) {
        let slot = shared.partition.slot(to);
        if !self.peers[slot].online {
            return;
        }
        match message {
            Message::Query {
                query,
                origin,
                origin_loc,
                keywords,
                target_filename,
                ttl,
            } => {
                let is_new = self.peers[slot].router.on_query(query, Some(from));
                if !is_new {
                    return;
                }
                // Decode the wire keywords into the reusable scratch buffers;
                // the query context borrows them, so this path allocates
                // nothing per event.
                self.scratch_keywords.clear();
                self.scratch_keywords
                    .extend(keywords.iter().map(|&k| KeywordId(k)));
                shared
                    .keyword_hashes
                    .of_all_into(&self.scratch_keywords, &mut self.scratch_hashes);

                let local_match = {
                    let qctx = QueryContext {
                        query,
                        origin,
                        origin_loc,
                        keywords: &self.scratch_keywords,
                        keyword_hashes: &self.scratch_hashes,
                        target_filename: target_filename.map(FileId),
                    };
                    let view = self.view(graph, shared, slot);
                    shared.protocol.local_match(&view, &qctx)
                };

                if let Some(hit) = local_match {
                    let hops = shared.config.ttl.saturating_sub(ttl) + 1;
                    // First-processed hit wins, exactly like the sequential
                    // engine: within this shard events drain in key order, so
                    // set-once keeps the shard minimum; finalize merges shards
                    // by key minimum.
                    let index = query_index(query);
                    if self.hits[index].is_none() {
                        self.hits[index] = Some(HitMark {
                            key,
                            hops,
                            from_cache: hit.from_cache,
                        });
                    }
                    // §4.1.2: the answering peer records the requestor as a new
                    // provider of the file (subject to its caching rule).
                    let requestor_entry = ProviderEntry {
                        provider: origin,
                        loc_id: origin_loc,
                    };
                    let response_ctx = ResponseContext {
                        file: hit.file,
                        file_keywords: shared.catalog.filename(hit.file).keywords().to_vec(),
                        query_keywords: self.scratch_keywords.clone(),
                        providers: Vec::new(),
                        requestor: requestor_entry,
                    };
                    shared.protocol.cache_response(
                        &mut self.peers[slot],
                        &shared.scheme,
                        &response_ctx,
                    );

                    let response = Message::QueryResponse {
                        query,
                        file: hit.file.0,
                        // Interned once per file in the catalog; every
                        // response about the file shares one allocation.
                        file_keywords: shared.catalog.wire_keywords(hit.file).clone(),
                        // The response carries the query's keywords so caching
                        // peers along the reverse path never need the origin
                        // shard's tracking state.
                        query_keywords: keywords,
                        providers: hit.providers,
                        requestor: requestor_entry,
                    };
                    if let Some(upstream) = self.peers[slot].router.response_next_hop(query) {
                        self.send(shared, key.time, to, upstream, response, Some(query_index(query)));
                    }
                    return;
                }

                // No local hit: keep forwarding while TTL allows.
                let Some(new_ttl) = decrement_ttl(ttl) else {
                    return;
                };
                let mut targets = std::mem::take(&mut self.scratch_targets);
                let decision = {
                    let qctx = QueryContext {
                        query,
                        origin,
                        origin_loc,
                        keywords: &self.scratch_keywords,
                        keyword_hashes: &self.scratch_hashes,
                        target_filename: target_filename.map(FileId),
                    };
                    let view = self.view(graph, shared, slot);
                    shared
                        .protocol
                        .forward_targets_into(&view, &qctx, Some(from), &mut targets)
                };
                self.tallies.decision_counts[decision_index(decision)] += 1;
                // Forwarded copies share the keyword list (`Arc`), so the
                // per-target cost is a reference-count bump, not a clone.
                let forwarded = Message::Query {
                    query,
                    origin,
                    origin_loc,
                    keywords,
                    target_filename,
                    ttl: new_ttl,
                };
                for &target in &targets {
                    self.send(
                        shared,
                        key.time,
                        to,
                        target,
                        forwarded.clone(),
                        Some(query_index(query)),
                    );
                }
                targets.clear();
                self.scratch_targets = targets;
            }
            Message::QueryResponse {
                query,
                file,
                file_keywords,
                query_keywords,
                providers,
                requestor,
            } => {
                let file = FileId(file);
                let index = query_index(query);
                // The origin is a pure function of the query id (= arrival
                // index), so any shard can answer "am I the origin?" without
                // reading the origin shard's tracking slab.
                let origin = PeerId(shared.arrivals[index].peer as u32);

                if origin == to {
                    self.handle_response_at_origin(shared, online, index, file, &providers);
                    return;
                }

                // Intermediate peer: cache per protocol rule, then relay.
                let keywords: Vec<KeywordId> =
                    file_keywords.iter().map(|&k| KeywordId(k)).collect();
                let response_ctx = ResponseContext {
                    file,
                    file_keywords: keywords,
                    query_keywords: query_keywords.iter().map(|&k| KeywordId(k)).collect(),
                    providers: providers.clone(),
                    requestor,
                };
                shared.protocol.cache_response(
                    &mut self.peers[slot],
                    &shared.scheme,
                    &response_ctx,
                );

                if let Some(upstream) = self.peers[slot].router.response_next_hop(query) {
                    let relay = Message::QueryResponse {
                        query,
                        file: file.0,
                        file_keywords,
                        query_keywords,
                        providers,
                        requestor,
                    };
                    self.send(shared, key.time, to, upstream, relay, Some(index));
                }
            }
            Message::DhtLookup {
                query,
                keyword,
                hop,
            } => {
                // An index-node lookup step: answer with everything the local
                // record store holds for the keyword plus the closest
                // contacts the local routing table knows toward its key. A
                // receiver that departed was filtered above — the step is
                // consumed without a reply, the structured analogue of a
                // timed-out RPC; the query's lifecycle completes through its
                // remaining branches.
                let directory = shared
                    .dht
                    .as_ref()
                    .expect("structured runs carry a directory");
                let mut entries = Vec::new();
                let mut closer = Vec::new();
                if let Some(node) = self.peers[slot].dht.as_ref() {
                    node.store.lookup_into(keyword, key.time, &mut entries);
                    node.table.closest_into(
                        directory.keyword_key(KeywordId(keyword)),
                        shared.config.dht.k,
                        &mut closer,
                    );
                }
                let reply = Message::DhtLookupReply {
                    query,
                    keyword,
                    hop,
                    entries,
                    closer,
                };
                self.send(shared, key.time, to, from, reply, Some(query_index(query)));
            }
            Message::DhtLookupReply {
                query,
                keyword,
                hop,
                entries,
                closer,
            } => {
                let index = query_index(query);
                // Only the origin holds lookup state; a reply arriving after
                // the walk concluded (satisfied, exhausted or completed) is
                // ignored.
                let Some(state) = self.dht_lookups.get_mut(&(index as u32)) else {
                    return;
                };
                // Settle the step's ledger entry. A reply whose slot a step
                // deadline already released finds none — its payload still
                // merges below, but the in-flight accounting has moved on.
                state.finish_step(from);
                let directory = shared
                    .dht
                    .as_ref()
                    .expect("structured runs carry a directory");
                for &contact in &closer {
                    if contact == to {
                        continue;
                    }
                    state.add_candidate(state.key.distance(directory.node_id(contact)), contact);
                }
                let keywords = state.keywords.clone();
                if let Some(tracking) = self.tracking.get_mut(&(index as u32)) {
                    tracking.dht_depth = tracking.dht_depth.max(hop);
                }
                if self.try_satisfy_from_dht(shared, online, key, index, &keywords, &entries, hop) {
                    return;
                }
                // Not satisfied: keep up to `alpha` steps walking among the
                // `k` closest known contacts, one hop deeper.
                let next_hop = hop + 1;
                if next_hop <= shared.config.dht.max_lookup_hops {
                    while let Some(target) =
                        self.dht_lookups.get_mut(&(index as u32)).and_then(|state| {
                            if state.inflight() >= shared.config.dht.alpha {
                                return None;
                            }
                            let target = state.take_next_target(shared.config.dht.k)?;
                            state.begin_step(target, next_hop);
                            Some(target)
                        })
                    {
                        self.send_dht_step(shared, key.time, to, target, query, keyword, next_hop, index);
                    }
                }
                // Shortlist exhausted with nothing in flight: the walk is
                // over; drop the state (the query completes via lifecycle).
                if self
                    .dht_lookups
                    .get(&(index as u32))
                    .is_some_and(|s| s.inflight() == 0)
                {
                    self.dht_lookups.remove(&(index as u32));
                }
            }
            Message::DhtStore {
                keyword,
                file,
                provider,
            } => {
                // A store transfer from a publish or republish round: the
                // record's TTL clock starts at delivery.
                let ttl = Duration::from_secs_f64(shared.config.dht.record_ttl_secs);
                if let Some(node) = self.peers[slot].dht.as_mut() {
                    node.store.insert(keyword, file, provider, key.time + ttl);
                }
            }
            Message::BloomFull { filter } => {
                self.peers[slot].set_neighbor_bloom(from, filter);
            }
            Message::BloomDelta { delta } => {
                self.peers[slot].apply_neighbor_bloom_delta(from, &delta);
            }
            Message::GroupAnnounce { gid } => {
                self.peers[slot].record_neighbor(from, crate::group::GroupId(gid));
            }
            Message::Ping | Message::Pong => {
                // Keep-alives carry no protocol state.
            }
        }
    }

    // --- DHT resolution -----------------------------------------------------

    /// Issues a DHT-resolved query: try the origin's own record store first
    /// (the origin may itself be an index node for the keyword), then start
    /// the iterative lookup with up to `alpha` parallel first steps toward
    /// the keyword's record key.
    #[allow(clippy::too_many_arguments)]
    fn dht_issue(
        &mut self,
        shared: &RunShared<'_>,
        online: &[bool],
        key: EventKey,
        index: usize,
        slot: usize,
        query_id: QueryId,
        keywords: &[KeywordId],
    ) {
        let directory = shared
            .dht
            .as_ref()
            .expect("structured runs carry a directory");
        if let Some(tracking) = self.tracking.get_mut(&(index as u32)) {
            tracking.dht_lookup = true;
        }
        // The lookup keys on the query's smallest keyword id — generated
        // keyword lists are sorted, so the choice is canonical for every
        // shard count. (Entries are still filtered against *all* keywords.)
        let Some(&keyword) = keywords.first() else {
            return;
        };
        let record_key = directory.keyword_key(keyword);
        let now = key.time;
        let mut entries = Vec::new();
        if let Some(node) = self.peers[slot].dht.as_ref() {
            node.store.lookup_into(keyword.0, now, &mut entries);
        }
        if self.try_satisfy_from_dht(shared, online, key, index, keywords, &entries, 0) {
            return;
        }
        let mut state = DhtLookupState::new(keywords.to_vec(), record_key);
        let mut seeds = Vec::new();
        if let Some(node) = self.peers[slot].dht.as_ref() {
            node.table
                .closest_into(record_key, shared.config.dht.k, &mut seeds);
        }
        for peer in seeds {
            state.add_candidate(record_key.distance(directory.node_id(peer)), peer);
        }
        let origin = self.peers[slot].id;
        for _ in 0..shared.config.dht.alpha {
            let Some(target) = state.take_next_target(shared.config.dht.k) else {
                break;
            };
            state.begin_step(target, 1);
            self.send_dht_step(shared, now, origin, target, query_id, keyword.0, 1, index);
        }
        if state.inflight() > 0 {
            self.dht_lookups.insert(index as u32, state);
        }
        // No known contacts at all: nothing in flight — the caller's
        // born-complete check closes the query.
    }

    /// Tries to satisfy query `index` from DHT record entries (the origin's
    /// own store at hop 0, or a lookup reply's payload). Entries must match
    /// every query keyword, offer a file the origin does not already hold,
    /// and name a provider that is online in this window's snapshot. Among
    /// satisfiable files the one with the most online providers wins (ties:
    /// smallest file id) — the analogue of the overlay's first-answer-wins
    /// richest response. On success the origin downloads, replicates and
    /// immediately re-publishes the file's keywords, and the lookup state is
    /// dropped.
    #[allow(clippy::too_many_arguments)]
    fn try_satisfy_from_dht(
        &mut self,
        shared: &RunShared<'_>,
        online: &[bool],
        key: EventKey,
        index: usize,
        keywords: &[KeywordId],
        entries: &[(u32, ProviderEntry)],
        hops: u32,
    ) -> bool {
        let Some(tracking) = self.tracking.get_mut(&(index as u32)) else {
            return false;
        };
        if tracking.satisfied {
            return true;
        }
        let origin = tracking.origin;
        let origin_loc = tracking.origin_loc;
        let slot = shared.partition.slot(origin);
        // Group the viable entries per file. A record keyed on one keyword
        // can index files missing the query's other keywords; those cannot
        // satisfy it (§3.1's all-keywords rule, same as the overlay path).
        let mut per_file: BTreeMap<FileId, Vec<ProviderEntry>> = BTreeMap::new();
        for &(file, provider) in entries {
            let file = FileId(file);
            if self.peers[slot].has_file(file) {
                continue;
            }
            if !online
                .get(provider.provider.index())
                .copied()
                .unwrap_or(false)
            {
                continue;
            }
            if !shared.catalog.filename(file).matches(keywords) {
                continue;
            }
            per_file.entry(file).or_default().push(provider);
        }
        let Some((&file, providers)) = per_file
            .iter()
            .max_by_key(|(file, providers)| (providers.len(), std::cmp::Reverse(file.0)))
        else {
            return false;
        };
        tracking.providers_offered = tracking.providers_offered.max(providers.len());
        let selection = select_provider(
            shared.protocol.selection_policy(),
            shared.topology,
            shared.link_latencies,
            origin,
            origin_loc,
            providers,
            &mut tracking.selection_rng,
        );
        let Some(selected) = selection else {
            return false;
        };
        tracking.satisfied = true;
        tracking.locality_match = selected.locality_match;
        tracking.download_distance_ms = Some(
            shared
                .link_latencies
                .latency(shared.topology, origin, selected.provider)
                .as_millis_f64(),
        );
        if self.hits[index].is_none() {
            self.hits[index] = Some(HitMark {
                key,
                hops,
                from_cache: false,
            });
        }
        // Natural replication, same as the overlay path: the requestor now
        // stores (and later serves) the file — and announces the new replica
        // to the keyword index right away.
        self.peers[slot].share_file(file);
        if shared.protocol.uses_bloom_sync() {
            let file_keywords = shared.catalog.filename(file).keywords().to_vec();
            self.peers[slot].advertise_keywords(&file_keywords);
        }
        self.dht_publish_file(shared, online, key.time, origin, slot, file);
        self.dht_lookups.remove(&(index as u32));
        true
    }

    /// Publishes `file`'s keywords from `origin` (a fresh replica) to the
    /// current `k` closest online index nodes per keyword — the event-driven
    /// counterpart of the periodic republish round, so a new replica is
    /// discoverable before the next round. Remote stores are real background
    /// messages paying link latency; self-targets store locally. Hybrid
    /// head-rank files skip this entirely: their discovery lives in the
    /// overlay's response indexes.
    fn dht_publish_file(
        &mut self,
        shared: &RunShared<'_>,
        online: &[bool],
        now: SimTime,
        origin: PeerId,
        slot: usize,
        file: FileId,
    ) {
        let Some(directory) = shared.dht.as_ref() else {
            return;
        };
        if !shared
            .protocol
            .dht_resolves_rank(shared.query_generator.rank_of(file), shared.catalog.len())
        {
            return;
        }
        let ttl = Duration::from_secs_f64(shared.config.dht.record_ttl_secs);
        let provider = ProviderEntry {
            provider: origin,
            loc_id: self.peers[slot].loc_id,
        };
        let mut targets = std::mem::take(&mut self.scratch_publish_targets);
        let mut scratch = std::mem::take(&mut self.scratch_directory);
        for &kw in shared.catalog.filename(file).keywords() {
            let record_key = directory.keyword_key(kw);
            directory.closest_online_into(
                record_key,
                online,
                shared.config.dht.k,
                &mut scratch,
                &mut targets,
            );
            for &target in &targets {
                if target == origin {
                    if let Some(node) = self.peers[slot].dht.as_mut() {
                        node.store.insert(kw.0, file.0, provider, now + ttl);
                    }
                } else {
                    let message = Message::DhtStore {
                        keyword: kw.0,
                        file: file.0,
                        provider,
                    };
                    self.send_background(shared, now, origin, target, message);
                }
            }
        }
        self.scratch_publish_targets = targets;
        self.scratch_directory = scratch;
    }

    fn handle_response_at_origin(
        &mut self,
        shared: &RunShared<'_>,
        online: &[bool],
        index: usize,
        file: FileId,
        providers: &[ProviderEntry],
    ) {
        let Some(tracking) = self.tracking.get_mut(&(index as u32)) else {
            return;
        };
        if tracking.satisfied {
            return;
        }
        let slot = shared.partition.slot(tracking.origin);
        // A response can offer a file the requestor already stores (a cached
        // index matches on keywords, not on the requestor's Zipf target).
        // Nothing would be downloaded, so it cannot satisfy the query — this
        // keeps the one-new-replica-per-satisfied-query accounting exact.
        if self.peers[slot].has_file(file) {
            return;
        }
        // Only online providers can actually serve the download (matters only
        // when churn is enabled; the static setup never filters anything).
        // The `online` snapshot is frozen per window — churn transitions only
        // happen at barriers — so this cross-shard read is race-free.
        let online_providers: Vec<ProviderEntry> = providers
            .iter()
            .copied()
            .filter(|p| online.get(p.provider.index()).copied().unwrap_or(false))
            .collect();
        tracking.providers_offered = tracking.providers_offered.max(online_providers.len());
        let selection = select_provider(
            shared.protocol.selection_policy(),
            shared.topology,
            shared.link_latencies,
            tracking.origin,
            tracking.origin_loc,
            &online_providers,
            &mut tracking.selection_rng,
        );
        let Some(selected) = selection else {
            return;
        };
        tracking.satisfied = true;
        tracking.locality_match = selected.locality_match;
        tracking.download_distance_ms = Some(
            shared
                .link_latencies
                .latency(shared.topology, tracking.origin, selected.provider)
                .as_millis_f64(),
        );
        // Natural replication: the requestor now stores (and later serves) the file.
        self.peers[slot].share_file(file);
        if shared.protocol.uses_bloom_sync() {
            let keywords = shared.catalog.filename(file).keywords().to_vec();
            self.peers[slot].advertise_keywords(&keywords);
        }
    }

    /// Applies query `index`'s completion at simulated time `now` — but only
    /// if this shard holds its tracking (i.e. is its origin shard): records
    /// `completed_at` and prunes the origin's `issued` entry, making the
    /// target searchable again. Safe to call on any zero-crossing of the
    /// local outstanding count; non-origin shards fall through. Also the
    /// entry point for the coordinator's fold-detected completions of
    /// escaped queries (applied at the canonical completion time recovered
    /// from the folded flux).
    pub(super) fn complete_locally(&mut self, shared: &RunShared<'_>, index: usize, now: SimTime) {
        let Some(tracking) = self.tracking.get_mut(&(index as u32)) else {
            return;
        };
        if tracking.completed_at.is_some() {
            return;
        }
        tracking.completed_at = Some(now);
        let slot = shared.partition.slot(tracking.origin);
        let target = tracking.target;
        // Remove only if the entry is still this query's: the value check
        // keeps a later re-query's fresher entry intact.
        if self.issued[slot].get(&target) == Some(&(index as u32)) {
            self.issued[slot].remove(&target);
        }
        // Any leftover lookup state is dead — e.g. the walk's last in-flight
        // step was consumed by a departed index node that never replied.
        self.dht_lookups.remove(&(index as u32));
    }

    // --- fault-plan timers --------------------------------------------------

    /// Sends one iterative-lookup step and, under a fault plan with step
    /// timeouts, arms its deadline. The caller has already recorded the step
    /// in the lookup state's ledger via
    /// [`begin_step`](DhtLookupState::begin_step).
    #[allow(clippy::too_many_arguments)]
    fn send_dht_step(
        &mut self,
        shared: &RunShared<'_>,
        now: SimTime,
        origin: PeerId,
        target: PeerId,
        query: QueryId,
        keyword: u32,
        hop: u32,
        index: usize,
    ) {
        let step = Message::DhtLookup {
            query,
            keyword,
            hop,
        };
        self.send(shared, now, origin, target, step, Some(index));
        if let Some(timeout) = shared.faults.as_ref().and_then(|f| f.dht_step_timeout) {
            self.schedule_timeout(now + timeout, index, TimeoutKind::DhtStep { peer: target });
        }
    }

    /// Arms a fault-plan deadline for query `index`. The timer is charged
    /// into the query's lifecycle exactly like an in-flight message (+1 now,
    /// −1 when it fires), so the completion stays exact while it is armed —
    /// and since timers are class 6, a reply landing exactly at the deadline
    /// is dispatched first. Timers live in the origin's own shard queue and
    /// never cross shards, so they cannot perturb channel lookaheads.
    fn schedule_timeout(&mut self, at: SimTime, index: usize, kind: TimeoutKind) {
        let discriminator = match kind {
            TimeoutKind::Retransmit { attempt } => u64::from(attempt),
            TimeoutKind::DhtStep { peer } => (1u64 << 32) | u64::from(peer.0),
        };
        self.outstanding[index] += 1;
        if let Some(flux) = &mut self.flux {
            flux.charge(index);
        }
        self.queue.push(
            timeout_key(at, index, discriminator),
            ShardEvent::Timeout {
                index: index as u32,
                kind,
            },
        );
    }

    /// Dispatches a fired deadline: retire its lifecycle charge, run the
    /// kind-specific recovery, then close the query if this was its last
    /// outstanding obligation.
    fn handle_timeout(
        &mut self,
        shared: &RunShared<'_>,
        graph: &OverlayGraph,
        key: EventKey,
        index: usize,
        kind: TimeoutKind,
    ) {
        self.outstanding[index] -= 1;
        if let Some(flux) = &mut self.flux {
            flux.consume(index, key);
        }
        match kind {
            TimeoutKind::Retransmit { attempt } => {
                self.retransmit_query(shared, graph, key, index, attempt)
            }
            TimeoutKind::DhtStep { peer } => self.handle_dht_step_timeout(shared, key, index, peer),
        }
        if self.outstanding[index] == 0 && !self.escaped[index] {
            self.complete_locally(shared, index, key.time);
        }
    }

    /// A retransmit deadline fired: if the query is still unanswered and has
    /// retries left, re-flood it from the origin under a fresh attempt id (a
    /// fresh id gives the re-flood its own duplicate-suppression and
    /// reverse-path state, so peers that suppressed attempt `n` still forward
    /// attempt `n+1`) and arm the next, backed-off deadline.
    fn retransmit_query(
        &mut self,
        shared: &RunShared<'_>,
        graph: &OverlayGraph,
        key: EventKey,
        index: usize,
        attempt: u32,
    ) {
        let (origin, origin_loc, keywords, target_filename) = {
            let Some(tracking) = self.tracking.get(&(index as u32)) else {
                return;
            };
            if tracking.satisfied || tracking.completed_at.is_some() {
                return;
            }
            let Some(retry) = tracking.retry.as_ref() else {
                return;
            };
            if retry.attempt != attempt {
                return;
            }
            (
                tracking.origin,
                tracking.origin_loc,
                retry.keywords.clone(),
                retry.target_filename,
            )
        };
        self.tallies.query_timeouts += 1;
        let Some(policy) = shared.faults.as_ref().and_then(|f| f.query_retransmit()) else {
            return;
        };
        if attempt >= policy.max_retries {
            return;
        }
        let slot = shared.partition.slot(origin);
        if !self.peers[slot].online {
            // The origin itself departed: nobody is left to retry (or to
            // receive an answer). The timer's consumption above lets the
            // query complete honestly.
            return;
        }
        let next = attempt + 1;
        let query_id = attempt_id(index, next);
        self.peers[slot].router.on_query(query_id, None);
        shared
            .keyword_hashes
            .of_all_into(&keywords, &mut self.scratch_hashes);
        let mut targets = std::mem::take(&mut self.scratch_targets);
        let decision = {
            let qctx = QueryContext {
                query: query_id,
                origin,
                origin_loc,
                keywords: &keywords,
                keyword_hashes: &self.scratch_hashes,
                target_filename,
            };
            let view = self.view(graph, shared, slot);
            shared
                .protocol
                .forward_targets_into(&view, &qctx, None, &mut targets)
        };
        self.tallies.decision_counts[decision_index(decision)] += 1;
        let message = Message::Query {
            query: query_id,
            origin,
            origin_loc,
            keywords: keywords.iter().map(|k| k.0).collect(),
            target_filename: target_filename.map(|f| f.0),
            ttl: shared.config.ttl,
        };
        let now = key.time;
        for &target in &targets {
            self.send(shared, now, origin, target, message.clone(), Some(index));
        }
        let sent = !targets.is_empty();
        targets.clear();
        self.scratch_targets = targets;
        if sent {
            self.tallies.query_retransmits += 1;
            if let Some(retry) = self
                .tracking
                .get_mut(&(index as u32))
                .and_then(|t| t.retry.as_mut())
            {
                retry.attempt = next;
            }
            let deadline = now + Duration::from_secs_f64(policy.delay_secs(next));
            self.schedule_timeout(deadline, index, TimeoutKind::Retransmit { attempt: next });
        } else if let Some(tracking) = self.tracking.get_mut(&(index as u32)) {
            // Nothing left to flood into (e.g. every neighbour departed):
            // disarm, and let the lifecycle close the query.
            tracking.retry = None;
        }
    }

    /// A DHT step deadline fired: if the step is still unanswered, release
    /// its in-flight slot and re-issue against the next shortlist candidates
    /// at the same hop depth, keeping at most `alpha` steps walking. This is
    /// what recovers lookups whose step landed on an index node that departed
    /// mid-walk and will never reply.
    fn handle_dht_step_timeout(
        &mut self,
        shared: &RunShared<'_>,
        key: EventKey,
        index: usize,
        peer: PeerId,
    ) {
        // `None` means the reply won the race at this exact deadline (class
        // ordering dispatches it first) or arrived long ago: nothing stalled.
        let Some(hop) = self
            .dht_lookups
            .get_mut(&(index as u32))
            .and_then(|state| state.finish_step(peer))
        else {
            return;
        };
        self.tallies.dht_step_timeouts += 1;
        let origin = PeerId(shared.arrivals[index].peer as u32);
        let slot = shared.partition.slot(origin);
        if self.peers[slot].online {
            let keyword = self
                .dht_lookups
                .get(&(index as u32))
                .and_then(|state| state.keywords.first().copied());
            if let Some(keyword) = keyword {
                let query = QueryId(index as u64);
                while let Some(target) =
                    self.dht_lookups.get_mut(&(index as u32)).and_then(|state| {
                        if state.inflight() >= shared.config.dht.alpha {
                            return None;
                        }
                        let target = state.take_next_target(shared.config.dht.k)?;
                        state.begin_step(target, hop);
                        Some(target)
                    })
                {
                    self.send_dht_step(shared, key.time, origin, target, query, keyword.0, hop, index);
                }
            }
        }
        if self
            .dht_lookups
            .get(&(index as u32))
            .is_some_and(|state| state.inflight() == 0)
        {
            self.dht_lookups.remove(&(index as u32));
        }
    }

    // --- sending ------------------------------------------------------------

    /// Sends a query-related message, charging it to the query's traffic
    /// count and to its outstanding-message lifecycle count.
    pub(super) fn send(
        &mut self,
        shared: &RunShared<'_>,
        now: SimTime,
        from: PeerId,
        to: PeerId,
        message: Message,
        query: Option<usize>,
    ) {
        self.tallies.message_counts[kind_index(message.kind())] += 1;
        if let Some(index) = query {
            self.messages[index] += 1;
            self.outstanding[index] += 1;
            if let Some(flux) = &mut self.flux {
                flux.charge(index);
            }
        }
        let crossed = self.route(shared, now, from, to, message);
        if crossed {
            if let Some(index) = query {
                self.escaped[index] = true;
                if let Some(flux) = &mut self.flux {
                    flux.mark_escaped(index);
                }
            }
        }
    }

    /// Sends a background (non-query) message such as a Bloom update.
    pub(super) fn send_background(
        &mut self,
        shared: &RunShared<'_>,
        now: SimTime,
        from: PeerId,
        to: PeerId,
        message: Message,
    ) {
        self.tallies.message_counts[kind_index(message.kind())] += 1;
        self.tallies.background_messages += 1;
        self.route(shared, now, from, to, message);
    }

    /// Stamps the canonical key and routes the delivery: into the local queue
    /// for same-shard destinations, into the destination's outbox bucket
    /// otherwise (returning `true` for the latter). Cross-shard latencies are
    /// at least the destination's channel lookahead by construction, so an
    /// outboxed delivery can never land inside the window that sent it.
    fn route(&mut self, shared: &RunShared<'_>, now: SimTime, from: PeerId, to: PeerId, message: Message) -> bool {
        let latency = shared.link_latencies.latency(shared.topology, from, to);
        let at = now + latency;
        debug_assert_eq!(shared.partition.shard(from), self.shard as usize);
        let sender_slot = shared.partition.slot(from);
        let seq = self.send_seq[sender_slot];
        self.send_seq[sender_slot] += 1;
        // The loss verdict is decided at send time in the sending shard, from
        // shard-invariant message identity (the send sequence is monotone in
        // the sender's deterministic event order). A lost message still
        // travels: its delivery occupies the same canonical position and is
        // consumed there, it just carries no payload effect — so the query
        // lifecycle, and therefore every completion time, stays exact.
        debug_assert_eq!(from.0 & LOST_BIT, 0, "peer ids must stay below the lost tag");
        let lost = shared
            .faults
            .as_ref()
            .is_some_and(|plan| plan.lose(now, from, to, seq));
        let key = deliver_key(at, to, from, seq);
        let from = if lost {
            self.tallies.messages_lost += 1;
            if message.kind() == MessageKind::DhtStore {
                self.tallies.dht_stores_lost += 1;
            }
            PeerId(from.0 | LOST_BIT)
        } else {
            from
        };
        let destination = shared.partition.shard(to);
        if destination == self.shard as usize {
            self.queue
                .push(key, ShardEvent::Deliver { from, to, message });
            false
        } else {
            debug_assert!(
                shared.channel_lookahead[destination].is_none_or(|w| latency >= w),
                "cross-shard latency {latency:?} below destination shard {destination}'s \
                 channel lookahead {:?}",
                shared.channel_lookahead[destination]
            );
            self.outboxes[destination].push(Outbound {
                key,
                from,
                to,
                message,
            });
            true
        }
    }

    /// Takes every pending outbound bucket (coordinator-side, at a barrier).
    pub(super) fn take_outbound(&mut self) -> Vec<(usize, Vec<Outbound>)> {
        self.outboxes
            .iter_mut()
            .enumerate()
            .filter(|(_, bucket)| !bucket.is_empty())
            .map(|(destination, bucket)| (destination, std::mem::take(bucket)))
            .collect()
    }
}
