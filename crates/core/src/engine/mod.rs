//! The protocol simulation engine, sharded for deterministic intra-run
//! parallelism.
//!
//! `ProtocolEngine` wires the substrate crates together and executes one
//! run: queries arrive according to the workload's Poisson process, travel
//! over the overlay according to the protocol's routing policy with per-link
//! latencies from the physical topology, responses travel back along reverse
//! paths and are cached according to the protocol's caching rule, and the
//! requestor picks a provider according to the protocol's selection policy.
//! Every query produces one [`QueryRecord`]; Figures 2–4 are aggregations of
//! those records.
//!
//! ## Sharded execution
//!
//! Peers are deterministically partitioned into `config.effective_shards()`
//! locality-aligned shards (`exchange::PeerPartition`). Simulated time
//! advances in bounded windows, and every tick runs two phases:
//!
//! 1. **Parallel drain** — each shard drains its local events for the window
//!    concurrently (scoped threads, one per shard). A shard only mutates its
//!    own peers and slabs; the overlay graph and the peers-online snapshot
//!    are frozen for the window. Messages to peers of another shard go into
//!    per-`(src, dst)` outboxes instead of a queue.
//! 2. **Barrier merge** — outboxes are merged into the destination queues in
//!    the canonical `(time, class, destination, source, link-seq)` order of
//!    `exchange`, and global transitions (periodic Bloom synchronisation,
//!    churn) are applied serially by the coordinator at their exact canonical
//!    position.
//!
//! The window length is the minimum cross-shard latency (the *lookahead*):
//! for static runs the minimum cross-shard **overlay-link** latency served by
//! [`LinkLatencyCache::min_cross_partition_latency`]; under churn — where
//! rewiring can connect any pair — the configured minimum pair latency. A
//! cross-shard message sent inside a window therefore always arrives in a
//! *later* window than it was sent, which makes the barrier merge exact
//! rather than approximate: every event is processed at exactly the canonical
//! position it would occupy in a single-queue run.
//!
//! Because the canonical order, the per-arrival RNG streams and the merge
//! rules are all pure functions of the configuration and seed, **any shard
//! count produces bit-identical [`SimulationReport`]s** — `shards = 1` is
//! simply the degenerate case with one queue, an unbounded window and no
//! threads. `tests/determinism.rs` pins the equality over shards {1, 2, 4, 8}
//! for all six protocols, with and without churn.
//!
//! The one carve-out: if a run trips the `max_events` safety valve (a bound
//! "well-formed simulations never hit"), sharded runs stop at the next window
//! barrier rather than mid-window, so the truncation point may differ between
//! shard counts. Results below the budget are unaffected.
//!
//! [`QueryRecord`]: locaware_metrics::QueryRecord
//! [`LinkLatencyCache::min_cross_partition_latency`]:
//!   locaware_net::LinkLatencyCache::min_cross_partition_latency

mod exchange;
mod shard;
mod tally;

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Barrier, Mutex, MutexGuard, RwLock};

use rand::rngs::StdRng;
use rand::Rng;

use locaware_bloom::BloomParams;
use locaware_metrics::{QueryOutcome, QueryRecord, RunMetrics};
use locaware_net::{LinkLatencyCache, LocId, PhysicalTopology};
use locaware_overlay::churn::ChurnEvent;
use locaware_overlay::{ChurnEventKind, Message, OverlayGraph, PeerId};
use locaware_sim::{Duration, EventKey, RngFactory, SimTime, StreamId};
use locaware_workload::{Arrival, Catalog, KeywordHashes, QueryGenerator};

use crate::config::{ProtocolKind, SimulationConfig};
use crate::group::GroupScheme;
use crate::peer::PeerState;
use crate::protocol::Protocol;
use crate::results::SimulationReport;

pub(crate) use exchange::locality_rank_order;

use exchange::{issue_key, PeerPartition, CLASS_BLOOM_SYNC, CLASS_CHURN};
use shard::{ShardEvent, ShardState};
use tally::{labelled_counters, Tallies, FORWARD_DECISIONS, MESSAGE_KINDS};

/// Read-only context shared by every shard and the coordinator during a run.
///
/// The two `RwLock`s hold the only state that crosses shard boundaries: the
/// overlay graph and the peers-online snapshot. Both are written exclusively
/// by the coordinator at barriers (churn transitions) and read-locked by each
/// shard for the duration of a window drain, so the event path never blocks.
pub(crate) struct RunShared<'a> {
    pub(crate) config: &'a SimulationConfig,
    pub(crate) protocol: &'a dyn Protocol,
    pub(crate) topology: &'a PhysicalTopology,
    pub(crate) link_latencies: &'a LinkLatencyCache,
    pub(crate) loc_ids: &'a [LocId],
    pub(crate) catalog: &'a Catalog,
    pub(crate) keyword_hashes: Arc<KeywordHashes>,
    pub(crate) scheme: GroupScheme,
    pub(crate) bloom_params: BloomParams,
    pub(crate) arrivals: &'a [Arrival],
    pub(crate) query_generator: &'a QueryGenerator,
    pub(crate) rng_factory: RngFactory,
    pub(crate) partition: &'a PeerPartition,
    pub(crate) graph: RwLock<OverlayGraph>,
    pub(crate) online: RwLock<Vec<bool>>,
    /// Upper bound on how long a query can still be travelling: the search
    /// fans out for at most `ttl` hops, the response retraces the reverse
    /// path, and every hop costs at most `max_latency_ms`.
    pub(crate) in_flight_window: Duration,
    /// The window length; `None` means unbounded (single shard, or a
    /// partition with no cross-shard links).
    pub(crate) lookahead: Option<Duration>,
}

/// Everything needed to execute one protocol run over a prepared substrate.
pub(crate) struct ProtocolEngine<'a> {
    config: &'a SimulationConfig,
    protocol: Box<dyn Protocol>,
    topology: &'a PhysicalTopology,
    link_latencies: &'a LinkLatencyCache,
    loc_ids: &'a [LocId],
    catalog: &'a Catalog,
    keyword_hashes: Arc<KeywordHashes>,
    scheme: GroupScheme,
    graph: OverlayGraph,
    peers: Vec<PeerState>,
    arrivals: Vec<Arrival>,
    churn_schedule: Vec<ChurnEvent>,
    query_generator: QueryGenerator,
    churn_rng: StdRng,
    rng_factory: RngFactory,
    bloom_params: BloomParams,
}

impl<'a> ProtocolEngine<'a> {
    /// Builds an engine for one run.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new(
        config: &'a SimulationConfig,
        kind: ProtocolKind,
        topology: &'a PhysicalTopology,
        link_latencies: &'a LinkLatencyCache,
        loc_ids: &'a [LocId],
        graph: &OverlayGraph,
        catalog: &'a Catalog,
        initial_shares: &[Vec<locaware_workload::FileId>],
        gids: &[crate::group::GroupId],
        arrivals: Vec<Arrival>,
        churn_schedule: Vec<ChurnEvent>,
        rng_factory: &RngFactory,
    ) -> Self {
        let protocol = crate::protocol::build_protocol(kind, config);
        let scheme = GroupScheme::new(config.group_count);
        let bloom_params = BloomParams::new(config.bloom_bits, config.bloom_hashes);
        let max_providers = protocol.max_providers_per_file(config);
        let keyword_hashes = catalog.keyword_hashes().clone();

        let mut peers: Vec<PeerState> = (0..config.peers)
            .map(|i| {
                let id = PeerId(i as u32);
                let mut state = PeerState::new(
                    id,
                    loc_ids[i],
                    gids[i],
                    bloom_params,
                    config.response_index_capacity,
                    max_providers,
                    keyword_hashes.clone(),
                );
                for &file in &initial_shares[i] {
                    state.share_file(file);
                    if protocol.uses_bloom_sync() {
                        // §5.2: Bloom routing must not miss results held by
                        // neighbours, so a peer's filter also covers the
                        // filenames it stores itself (see DESIGN.md).
                        state.advertise_keywords(catalog.filename(file).keywords());
                    }
                }
                state
            })
            .collect();

        // Neighbours exchange group ids on join (§4.2); modelled as already
        // known at simulation start, like the paper's static setup.
        for i in 0..config.peers {
            let id = PeerId(i as u32);
            for &n in graph.neighbors(id) {
                let gid = gids[n.index()];
                peers[i].record_neighbor(n, gid, bloom_params);
            }
        }

        // Initial Bloom exchange between neighbours ("Neighboring peers
        // exchange their group Ids as well as their Bloom filters", §4.2).
        if protocol.uses_bloom_sync() {
            let initial_blooms: Vec<_> = peers
                .iter_mut()
                .map(|p| {
                    let _ = p.take_bloom_update();
                    p.exported_bloom().clone()
                })
                .collect();
            for i in 0..config.peers {
                let id = PeerId(i as u32);
                for &n in graph.neighbors(id) {
                    let bloom = initial_blooms[n.index()].clone();
                    peers[i].set_neighbor_bloom(n, bloom);
                }
            }
        }

        // The base workload stream seeds only the generator's one-time
        // popularity permutation; per-query draws come from streams derived
        // per arrival index, so they are independent of processing order.
        let mut workload_rng = rng_factory.stream(StreamId::QueryWorkload);
        let query_generator = QueryGenerator::new(
            catalog,
            locaware_workload::QueryWorkloadConfig {
                zipf_exponent: config.zipf_exponent,
                min_keywords: config.min_query_keywords,
                max_keywords: config.max_query_keywords,
            },
            &mut workload_rng,
        );

        ProtocolEngine {
            config,
            protocol,
            topology,
            link_latencies,
            loc_ids,
            catalog,
            keyword_hashes,
            scheme,
            graph: graph.clone(),
            peers,
            arrivals,
            churn_schedule,
            query_generator,
            churn_rng: rng_factory.stream(StreamId::Churn),
            rng_factory: *rng_factory,
            bloom_params,
        }
    }

    /// Executes the run and produces the report.
    pub(crate) fn run(mut self) -> SimulationReport {
        let mut shard_count = self.config.effective_shards();
        let mut partition = PeerPartition::locality(self.loc_ids, shard_count);

        // The window length (lookahead): a lower bound on the latency of any
        // message that can cross a shard boundary. Static runs only ever send
        // along overlay links; churn can rewire any pair, so the bound falls
        // back to the configured minimum pair latency (rounding to integer
        // microseconds is monotone, so the rounded configured minimum bounds
        // every rounded pair latency). `None` means unbounded: one shard, or
        // no cross-shard links at all.
        let window_length = |partition: &PeerPartition, churn_free: bool| {
            if churn_free {
                self.link_latencies.min_cross_partition_latency(&partition.shard_of)
            } else {
                Some(Duration::from_millis_f64(self.config.min_latency_ms))
            }
        };
        let mut lookahead = if shard_count == 1 {
            None
        } else {
            window_length(&partition, self.churn_schedule.is_empty())
        };
        if lookahead == Some(Duration::ZERO) {
            // A zero-length window means some cross-shard message could land
            // in the very window that sent it (sub-microsecond latencies
            // rounding to zero): no positive lookahead exists, so parallel
            // windows cannot be exact. Fall back to a single shard — a pure
            // scheduling change, results are identical by the engine's
            // shard-count-invariance contract.
            shard_count = 1;
            partition = PeerPartition::locality(self.loc_ids, 1);
            lookahead = None;
        }

        // Distribute the peers into their shards' slot-indexed vectors.
        let arrivals_len = self.arrivals.len();
        let mut slots: Vec<Vec<Option<PeerState>>> = partition
            .sizes
            .iter()
            .map(|&size| (0..size).map(|_| None).collect())
            .collect();
        for (i, peer) in std::mem::take(&mut self.peers).into_iter().enumerate() {
            slots[partition.shard_of[i] as usize][partition.slot_of[i] as usize] = Some(peer);
        }
        let shards: Vec<Mutex<ShardState>> = slots
            .into_iter()
            .enumerate()
            .map(|(index, peer_slots)| {
                let peers: Vec<PeerState> = peer_slots
                    .into_iter()
                    .map(|p| p.expect("partition covers every peer"))
                    .collect();
                Mutex::new(ShardState::new(
                    index as u32,
                    shard_count,
                    peers,
                    arrivals_len,
                ))
            })
            .collect();

        // Schedule the arrivals into their origin shards.
        for (index, arrival) in self.arrivals.iter().enumerate() {
            let origin = PeerId(arrival.peer as u32);
            shards[partition.shard(origin)]
                .lock()
                .expect("fresh shard lock")
                .queue
                .push(issue_key(arrival.at, index), ShardEvent::Issue(index as u32));
        }

        // Global transitions — Bloom sync rounds over the workload span (plus
        // a small drain margin so late responses still see fresh filters) and
        // the churn schedule — run serially at barriers, at their canonical
        // position in the event order.
        let last_arrival = self.arrivals.last().map(|a| a.at).unwrap_or(SimTime::ZERO);
        let mut control: Vec<(EventKey, ControlAction)> = Vec::new();
        if self.protocol.uses_bloom_sync() {
            let period = Duration::from_secs_f64(self.config.bloom_sync_period_secs);
            let horizon = last_arrival + Duration::from_secs(60);
            let mut t = SimTime::ZERO + period;
            let mut round = 0u64;
            while t <= horizon {
                control.push((
                    EventKey::new(t, CLASS_BLOOM_SYNC, round, 0),
                    ControlAction::BloomSync,
                ));
                round += 1;
                t += period;
            }
        }
        for (i, event) in self.churn_schedule.iter().enumerate() {
            control.push((
                EventKey::new(event.at, CLASS_CHURN, i as u64, 0),
                ControlAction::Churn(i),
            ));
        }
        control.sort_by_key(|&(key, _)| key);

        let shared = RunShared {
            config: self.config,
            protocol: &*self.protocol,
            topology: self.topology,
            link_latencies: self.link_latencies,
            loc_ids: self.loc_ids,
            catalog: self.catalog,
            keyword_hashes: self.keyword_hashes.clone(),
            scheme: self.scheme,
            bloom_params: self.bloom_params,
            arrivals: &self.arrivals,
            query_generator: &self.query_generator,
            rng_factory: self.rng_factory,
            partition: &partition,
            graph: RwLock::new(std::mem::replace(&mut self.graph, OverlayGraph::new(0))),
            online: RwLock::new(vec![true; self.config.peers]),
            in_flight_window: Duration::from_millis_f64(
                2.0 * self.config.ttl as f64 * self.config.max_latency_ms,
            ),
            lookahead,
        };

        let mut coordinator = Coordinator {
            control,
            next_control: 0,
            churn_schedule: std::mem::take(&mut self.churn_schedule),
            churn_rng: {
                let fresh = self.rng_factory.stream(StreamId::Churn);
                std::mem::replace(&mut self.churn_rng, fresh)
            },
            controls_dispatched: 0,
            control_end_time: SimTime::ZERO,
            max_events: self.config.max_events,
            lookahead,
            windows: 0,
            engaged_windows: 0,
            prev_dispatched: vec![0; shard_count],
            critical_path_events: 0,
        };

        if shard_count == 1 || !worker_threads_available() {
            // Single shard — or a single-CPU host, where worker threads can
            // only add scheduling overhead: drain the shards on this thread.
            // The state transitions are identical either way (the executor is
            // a pure scheduling choice), so results do not depend on the host.
            coordinator.drive(&shared, &shards, &mut Executor::Inline);
        } else {
            let barrier = Barrier::new(shard_count + 1);
            let cmd = Mutex::new(Cmd::Run(EventKey::MAX, 0));
            let panicked = AtomicBool::new(false);
            std::thread::scope(|scope| {
                for index in 0..shard_count {
                    let shared = &shared;
                    let shards = &shards;
                    let barrier = &barrier;
                    let cmd = &cmd;
                    let panicked = &panicked;
                    scope.spawn(move || loop {
                        barrier.wait();
                        let command = *cmd.lock().expect("window command lock poisoned");
                        match command {
                            Cmd::Quit => break,
                            Cmd::Run(bound, cap) => {
                                if !panicked.load(Ordering::SeqCst) {
                                    let outcome = catch_unwind(AssertUnwindSafe(|| {
                                        shards[index]
                                            .lock()
                                            .expect("shard lock poisoned")
                                            .drain(shared, bound, cap);
                                    }));
                                    if outcome.is_err() {
                                        panicked.store(true, Ordering::SeqCst);
                                    }
                                }
                                barrier.wait();
                            }
                        }
                    });
                }
                let mut executor = Executor::Threaded {
                    barrier: &barrier,
                    cmd: &cmd,
                    panicked: &panicked,
                    released: false,
                };
                // The coordinator itself runs protocol code (inline windows,
                // barrier transitions); if it panics while the workers are
                // parked at the barrier, the scope would join threads that
                // are still waiting — a hang instead of a test failure. Catch
                // the unwind, release the workers, then resume it.
                let outcome = catch_unwind(AssertUnwindSafe(|| {
                    coordinator.drive(&shared, &shards, &mut executor)
                }));
                executor.shutdown();
                if let Err(panic) = outcome {
                    std::panic::resume_unwind(panic);
                }
            });
        }

        let shard_states: Vec<ShardState> = shards
            .into_iter()
            .map(|m| m.into_inner().expect("shard lock poisoned"))
            .collect();
        coordinator.print_stats(&shard_states, lookahead);
        self.finalize(&partition, shard_states, coordinator)
    }

    fn finalize(
        self,
        partition: &PeerPartition,
        shards: Vec<ShardState>,
        coordinator: Coordinator,
    ) -> SimulationReport {
        let mut totals = Tallies::new();
        for shard in &shards {
            totals.merge(&shard.tallies);
        }

        // Per-query merge: origin-local tracking lives in the origin's shard;
        // per-query message counts are summed across shards; the first local
        // match is the canonical-key minimum across shards. Arrival index
        // order is issue order (arrivals are time-sorted, canonical keys
        // tie-break by index), so records renumber contiguously in it.
        let mut metrics = RunMetrics::new();
        let mut emitted = 0u64;
        for index in 0..self.arrivals.len() {
            let origin = PeerId(self.arrivals[index].peer as u32);
            let Some(tracking) = shards[partition.shard(origin)].tracking.get(&(index as u32))
            else {
                continue;
            };
            let messages: u64 = shards.iter().map(|s| s.messages[index]).sum();
            let hit = shards
                .iter()
                .filter_map(|s| s.hits[index])
                .min_by_key(|h| h.key);
            metrics.push(QueryRecord {
                index: emitted,
                requestor: tracking.origin.0,
                outcome: if tracking.satisfied {
                    QueryOutcome::Satisfied
                } else {
                    QueryOutcome::Unsatisfied
                },
                messages,
                download_distance_ms: tracking.download_distance_ms,
                locality_match: tracking.locality_match,
                providers_offered: tracking.providers_offered,
                hops_to_hit: hit.map(|h| h.hops),
                answered_from_cache: hit.map(|h| h.from_cache).unwrap_or(false),
            });
            emitted += 1;
        }

        let total_replicas: usize = shards
            .iter()
            .flat_map(|s| s.peers.iter())
            .map(|p| p.shared_file_count())
            .sum();
        let total_cached: usize = shards
            .iter()
            .flat_map(|s| s.peers.iter())
            .map(|p| p.response_index.len())
            .sum();

        let dispatched_events =
            coordinator.controls_dispatched + shards.iter().map(|s| s.dispatched).sum::<u64>();
        let end_time = shards
            .iter()
            .map(|s| s.last_event_time)
            .chain(std::iter::once(coordinator.control_end_time))
            .max()
            .unwrap_or(SimTime::ZERO);

        SimulationReport {
            protocol: self.protocol.kind(),
            queries_issued: totals.queries_issued,
            metrics,
            message_counters: labelled_counters(&MESSAGE_KINDS, &totals.message_counts),
            routing_decisions: labelled_counters(&FORWARD_DECISIONS, &totals.decision_counts),
            background_messages: totals.background_messages,
            total_file_replicas: total_replicas,
            total_cached_index_entries: total_cached,
            simulated_end_time_secs: end_time.as_secs_f64(),
            dispatched_events,
        }
    }
}

/// Whether spawning per-shard worker threads can possibly pay off: requires
/// more than one CPU, overridable for tests via `LOCAWARE_SHARD_THREADS`
/// (`1`/`true` forces workers even on one CPU, `0`/`false` forces the inline
/// executor). Read once per process.
fn worker_threads_available() -> bool {
    use std::sync::OnceLock;
    static AVAILABLE: OnceLock<bool> = OnceLock::new();
    *AVAILABLE.get_or_init(|| {
        match std::env::var("LOCAWARE_SHARD_THREADS").ok().as_deref() {
            Some("1") | Some("true") => return true,
            Some("0") | Some("false") => return false,
            _ => {}
        }
        std::thread::available_parallelism().is_ok_and(|n| n.get() > 1)
    })
}

/// A global transition handled serially at a barrier.
#[derive(Debug, Clone, Copy)]
enum ControlAction {
    /// One periodic Bloom synchronisation round over all peers.
    BloomSync,
    /// The `i`-th entry of the churn schedule.
    Churn(usize),
}

/// A window command handed to the worker threads.
#[derive(Debug, Clone, Copy)]
enum Cmd {
    /// Drain the local queue up to the bound, dispatching at most `cap`
    /// events.
    Run(EventKey, u64),
    /// The run is over; exit the worker loop.
    Quit,
}

/// How a window's parallel phase is executed.
enum Executor<'e> {
    /// Drain every shard on the current thread (the `shards = 1` fast path —
    /// no barriers, no contention — and the reference execution).
    Inline,
    /// Signal the parked worker threads through the barrier. `released` is
    /// set once the workers have been told to quit, so the release happens
    /// exactly once no matter which path (normal shutdown or worker-panic
    /// propagation) gets there first.
    Threaded {
        barrier: &'e Barrier,
        cmd: &'e Mutex<Cmd>,
        panicked: &'e AtomicBool,
        released: bool,
    },
}

impl Executor<'_> {
    fn run_window(
        &mut self,
        shared: &RunShared<'_>,
        shards: &[Mutex<ShardState>],
        bound: EventKey,
        cap: u64,
    ) {
        match self {
            Executor::Inline => {
                for shard in shards {
                    shard
                        .lock()
                        .expect("shard lock poisoned")
                        .drain(shared, bound, cap);
                }
            }
            Executor::Threaded {
                barrier,
                cmd,
                panicked,
                released,
            } => {
                *cmd.lock().expect("window command lock poisoned") = Cmd::Run(bound, cap);
                barrier.wait();
                barrier.wait();
                if panicked.load(Ordering::SeqCst) {
                    // Release the workers before propagating, so the panic
                    // surfaces as a test failure instead of a barrier hang.
                    *cmd.lock().expect("window command lock poisoned") = Cmd::Quit;
                    barrier.wait();
                    *released = true;
                    panic!("a sharded-engine worker thread panicked");
                }
            }
        }
    }

    fn shutdown(&mut self) {
        if let Executor::Threaded {
            barrier,
            cmd,
            released,
            ..
        } = self
        {
            if !*released {
                *cmd.lock().expect("window command lock poisoned") = Cmd::Quit;
                barrier.wait();
                *released = true;
            }
        }
    }
}

/// The serial half of the sharded run: window planning, barrier merges and
/// global transitions.
struct Coordinator {
    control: Vec<(EventKey, ControlAction)>,
    next_control: usize,
    churn_schedule: Vec<ChurnEvent>,
    churn_rng: StdRng,
    controls_dispatched: u64,
    control_end_time: SimTime,
    max_events: u64,
    lookahead: Option<Duration>,
    /// Parallelism profile of the run (see [`Coordinator::print_stats`]):
    /// windows run, windows with 2+ active shards, per-shard dispatch counts
    /// at the last barrier, and the critical-path event count — the wall
    /// clock an ideal machine with one core per shard could not go below.
    windows: u64,
    engaged_windows: u64,
    prev_dispatched: Vec<u64>,
    critical_path_events: u64,
}

impl Coordinator {
    /// The main loop: alternate parallel windows and serial control steps
    /// until every queue is empty and the control schedule is exhausted (or
    /// the event budget trips).
    fn drive(
        &mut self,
        shared: &RunShared<'_>,
        shards: &[Mutex<ShardState>],
        executor: &mut Executor<'_>,
    ) {
        loop {
            let mut guards = lock_all(shards);
            let dispatched: u64 =
                self.controls_dispatched + guards.iter().map(|g| g.dispatched).sum::<u64>();
            let Some(remaining) = self.max_events.checked_sub(dispatched).filter(|&r| r > 0)
            else {
                break; // Event budget exhausted: stop at this barrier.
            };

            let next_event: Option<EventKey> =
                guards.iter().filter_map(|g| g.queue.peek_key()).min();
            let next_control = self.control.get(self.next_control).map(|&(key, _)| key);

            match (next_event, next_control) {
                (None, None) => break,
                (event, Some(control)) if event.is_none_or(|e| control < e) => {
                    self.run_control(shared, &mut guards, control);
                }
                (Some(event), control) => {
                    // Window end: the lookahead past the earliest pending
                    // event, capped by the next control transition. Jumping
                    // the window start to the earliest event skips dead time,
                    // so sparse stretches cost no barriers.
                    let horizon = match self.lookahead {
                        Some(w) => EventKey::before_time(event.time.saturating_add(w)),
                        None => EventKey::MAX,
                    };
                    let bound = control.map_or(horizon, |c| c.min(horizon));
                    // Windows whose pending events all sit in one shard gain
                    // nothing from waking the workers: drain that shard on
                    // this thread (identical state transitions, no barrier).
                    // Sparse stretches of a run — where a whole query burst
                    // fits inside one locality — cost no synchronisation.
                    let active = guards
                        .iter()
                        .filter(|g| g.queue.peek_key().is_some_and(|k| k < bound))
                        .count();
                    if active <= 1 {
                        for guard in guards.iter_mut() {
                            guard.drain(shared, bound, remaining);
                        }
                    } else {
                        drop(guards);
                        executor.run_window(shared, shards, bound, remaining);
                        guards = lock_all(shards);
                    }
                    merge_outboxes(&mut guards, bound);
                    // Critical-path accounting: a window's parallel phase is
                    // as slow as its busiest shard.
                    self.windows += 1;
                    self.engaged_windows += u64::from(active > 1);
                    let mut busiest = 0u64;
                    for (index, guard) in guards.iter().enumerate() {
                        let delta = guard.dispatched - self.prev_dispatched[index];
                        self.prev_dispatched[index] = guard.dispatched;
                        busiest = busiest.max(delta);
                    }
                    self.critical_path_events += busiest;
                }
                (None, Some(_)) => {
                    unreachable!("the guard above admits every (None, Some) pair")
                }
            }
        }
    }

    /// Handles one control transition (everything strictly before its
    /// canonical key has already drained).
    fn run_control(
        &mut self,
        shared: &RunShared<'_>,
        guards: &mut [MutexGuard<'_, ShardState>],
        key: EventKey,
    ) {
        let (_, action) = self.control[self.next_control];
        self.next_control += 1;
        self.controls_dispatched += 1;
        self.critical_path_events += 1; // Controls are inherently serial.
        self.control_end_time = key.time;
        match action {
            ControlAction::BloomSync => self.bloom_sync(shared, guards, key.time),
            ControlAction::Churn(index) => {
                let event = self.churn_schedule[index];
                self.apply_churn(shared, guards, event);
            }
        }
        // Control transitions may send (Bloom deltas); merge immediately so
        // the next window-planning pass sees them in the destination queues.
        merge_outboxes(guards, key);
    }

    /// When `LOCAWARE_SHARD_STATS=1`, prints the run's parallelism profile to
    /// stderr: total vs critical-path events bound how much an ideal machine
    /// with one core per shard could compress the run
    /// (`ideal_speedup = total / critical_path`). Measured, deterministic
    /// quantities — the profile is how `BENCH_prN.json` grounds multi-core
    /// projections on single-core CI hardware.
    fn print_stats(&self, shards: &[ShardState], lookahead: Option<Duration>) {
        if std::env::var("LOCAWARE_SHARD_STATS").as_deref() != Ok("1") {
            return;
        }
        let dispatched: u64 =
            self.controls_dispatched + shards.iter().map(|s| s.dispatched).sum::<u64>();
        let critical = self.critical_path_events.max(1);
        eprintln!(
            "shard-stats: shards={} lookahead_us={} windows={} engaged_windows={} \
             events={} critical_path_events={} ideal_speedup={:.2}",
            shards.len(),
            lookahead.map_or(0, Duration::as_micros),
            self.windows,
            self.engaged_windows,
            dispatched,
            critical,
            dispatched as f64 / critical as f64,
        );
    }

    /// One Bloom synchronisation round: every online peer with a dirty filter
    /// pushes the delta to its active neighbours, in peer-id order exactly
    /// like the sequential engine's single sync event.
    fn bloom_sync(
        &mut self,
        shared: &RunShared<'_>,
        guards: &mut [MutexGuard<'_, ShardState>],
        now: SimTime,
    ) {
        let graph = shared.graph.read().expect("overlay graph lock poisoned");
        for i in 0..shared.config.peers {
            let from = PeerId(i as u32);
            let shard = shared.partition.shard(from);
            let slot = shared.partition.slot(from);
            if !guards[shard].peers[slot].online {
                continue;
            }
            let Some(delta) = guards[shard].peers[slot].take_bloom_update() else {
                continue;
            };
            let neighbors: Vec<PeerId> = graph
                .neighbors(from)
                .iter()
                .copied()
                .filter(|&n| graph.is_active(n))
                .collect();
            for n in neighbors {
                let message = Message::BloomDelta {
                    delta: delta.clone(),
                };
                guards[shard].send_background(shared, now, from, n, message);
            }
        }
    }

    /// One churn transition, mutating the graph, the affected peers (possibly
    /// across several shards) and the online snapshot — all under the write
    /// locks the window drains read.
    fn apply_churn(
        &mut self,
        shared: &RunShared<'_>,
        guards: &mut [MutexGuard<'_, ShardState>],
        event: ChurnEvent,
    ) {
        let peer = event.peer;
        if peer.index() >= shared.config.peers {
            return;
        }
        let shard = shared.partition.shard(peer);
        let slot = shared.partition.slot(peer);
        let mut graph = shared.graph.write().expect("overlay graph lock poisoned");
        let mut online = shared.online.write().expect("online snapshot lock poisoned");
        match event.kind {
            ChurnEventKind::Leave => {
                if !guards[shard].peers[slot].online {
                    return;
                }
                let old_neighbors = graph.depart(peer);
                guards[shard].peers[slot].online = false;
                online[peer.index()] = false;
                for n in old_neighbors {
                    let ns = shared.partition.shard(n);
                    let nslot = shared.partition.slot(n);
                    guards[ns].peers[nslot].forget_neighbor(peer);
                }
                if shared.config.proactive_provider_invalidation {
                    // CUP-style proactive invalidation, modelled as an
                    // oracle: every online peer drops its index entries for
                    // the departed provider (O(affected) each, via the
                    // provider → files postings map) and updates its Bloom
                    // filter for entries that vanish. Runs serially at the
                    // churn barrier, in peer-id order, so it is part of the
                    // canonical event order and deterministic for any shard
                    // count. Off by default: the lazy selection-time filter
                    // is the paper's (and the seed's) behaviour.
                    for other in 0..shared.config.peers {
                        if other == peer.index() {
                            continue;
                        }
                        let other_id = PeerId(other as u32);
                        let os = shared.partition.shard(other_id);
                        let oslot = shared.partition.slot(other_id);
                        if guards[os].peers[oslot].online {
                            guards[os].peers[oslot].forget_provider(peer);
                        }
                    }
                }
            }
            ChurnEventKind::Join => {
                if guards[shard].peers[slot].online {
                    return;
                }
                graph.rejoin(peer);
                guards[shard].peers[slot].online = true;
                guards[shard].peers[slot].reset_volatile_state();
                online[peer.index()] = true;
                // Re-wire to `average_degree` random online peers.
                let degree = shared.config.average_degree.round() as usize;
                let candidates: Vec<PeerId> = graph.active_peers().filter(|&p| p != peer).collect();
                for _ in 0..degree.max(1) {
                    if candidates.is_empty() {
                        break;
                    }
                    let pick = candidates[self.churn_rng.gen_range(0..candidates.len())];
                    if graph.add_edge(peer, pick) {
                        let peer_gid = guards[shard].peers[slot].gid;
                        let ps = shared.partition.shard(pick);
                        let pslot = shared.partition.slot(pick);
                        let pick_gid = guards[ps].peers[pslot].gid;
                        guards[shard].peers[slot].record_neighbor(
                            pick,
                            pick_gid,
                            shared.bloom_params,
                        );
                        guards[ps].peers[pslot].record_neighbor(
                            peer,
                            peer_gid,
                            shared.bloom_params,
                        );
                    }
                }
            }
        }
    }
}

fn lock_all<'g>(shards: &'g [Mutex<ShardState>]) -> Vec<MutexGuard<'g, ShardState>> {
    shards
        .iter()
        .map(|m| m.lock().expect("shard lock poisoned"))
        .collect()
}

/// Moves every outboxed cross-shard delivery into its destination queue. The
/// canonical keys were fixed at send time and are never below the window
/// bound just drained, so this is a plain batch of heap insertions.
fn merge_outboxes(guards: &mut [MutexGuard<'_, ShardState>], window_bound: EventKey) {
    let mut moves: Vec<(usize, exchange::Outbound)> = Vec::new();
    for guard in guards.iter_mut() {
        for (destination, bucket) in guard.take_outbound() {
            for outbound in bucket {
                moves.push((destination, outbound));
            }
        }
    }
    for (destination, outbound) in moves {
        debug_assert!(
            outbound.key >= window_bound,
            "cross-shard delivery {:?} would land inside the window bounded by {:?}",
            outbound.key,
            window_bound
        );
        guards[destination].queue.push(
            outbound.key,
            ShardEvent::Deliver {
                from: outbound.from,
                to: outbound.to,
                message: outbound.message,
            },
        );
    }
}
