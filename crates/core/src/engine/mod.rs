//! The protocol simulation engine, sharded for deterministic intra-run
//! parallelism.
//!
//! `ProtocolEngine` wires the substrate crates together and executes one
//! run: queries arrive according to the workload's Poisson process, travel
//! over the overlay according to the protocol's routing policy with per-link
//! latencies from the physical topology, responses travel back along reverse
//! paths and are cached according to the protocol's caching rule, and the
//! requestor picks a provider according to the protocol's selection policy.
//! Every query produces one [`QueryRecord`]; Figures 2–4 are aggregations of
//! those records.
//!
//! ## Sharded execution
//!
//! Peers are deterministically partitioned into `config.effective_shards()`
//! locality-aligned shards (`exchange::PeerPartition`). Simulated time
//! advances in bounded windows, and every tick runs two phases:
//!
//! 1. **Parallel drain** — each shard drains its local events for the window
//!    concurrently (scoped threads, one per shard). A shard only mutates its
//!    own peers and slabs; the overlay graph and the peers-online snapshot
//!    are frozen for the window. Messages to peers of another shard go into
//!    per-`(src, dst)` outboxes instead of a queue.
//! 2. **Barrier merge** — outboxes are merged into the destination queues in
//!    the canonical `(time, class, destination, source, link-seq)` order of
//!    `exchange`, and global transitions (periodic Bloom synchronisation,
//!    churn) are applied serially by the coordinator at their exact canonical
//!    position.
//!
//! Window lengths are **per-destination channel lookaheads** in the classic
//! CMB (Chandy–Misra–Bryant) conservative style: shard `i` may advance to
//! `frontier + Wᵢ`, where `Wᵢ` is the minimum latency over its *incoming*
//! cross-shard overlay-link channels
//! ([`LinkLatencyCache::incoming_channel_mins`]); under churn — where
//! rewiring can connect any pair — every `Wᵢ` falls back to the configured
//! minimum pair latency. A cross-shard message sent inside a window
//! therefore always arrives past the destination's bound — in a *later*
//! window than it was sent — which makes the barrier merge exact rather
//! than approximate: every event is processed at exactly the canonical
//! position it would occupy in a single-queue run. A shard behind a
//! high-latency boundary advances further per barrier than the old global
//! `min`-over-all-channels window allowed, cutting the barrier count.
//!
//! ## Query lifecycle
//!
//! Queries have an explicit lifecycle (tracked in `shard`): outstanding-message
//! counts per arrival, folded across shards at each barrier, synthesize a
//! canonical class-4 **completion event** when the last in-flight message is
//! consumed. Duplicate suppression keys on actual completion, which adds one
//! cross-shard read the lookahead alone cannot protect: whether a peer's
//! earlier query is still in flight at a *pending* issue's position may be
//! decided by deliveries another shard has not folded yet. The coordinator
//! therefore **caps** a shard's window at the first pending issue whose
//! peer has an open (or completed-but-not-yet-pruned) query — or an earlier
//! pending same-peer issue — deferring that issue until the global frontier
//! reaches it, at which point the folded lifecycle state is exact at its
//! position. The issue at the global frontier itself is never capped, so
//! every window still makes progress. Caps are pure scheduling: they only
//! delay when an issue runs, never what it observes.
//!
//! Because the canonical order, the per-arrival RNG streams and the merge
//! rules are all pure functions of the configuration and seed, **any shard
//! count produces bit-identical [`SimulationReport`]s** — `shards = 1` is
//! simply the degenerate case with one queue, an unbounded window and no
//! threads. `tests/determinism.rs` pins the equality over shards {1, 2, 4, 8}
//! for all six protocols, with and without churn.
//!
//! The one carve-out: if a run trips the `max_events` safety valve (a bound
//! "well-formed simulations never hit"), sharded runs stop at the next window
//! barrier rather than mid-window, so the truncation point may differ between
//! shard counts. Results below the budget are unaffected.
//!
//! [`QueryRecord`]: locaware_metrics::QueryRecord
//! [`LinkLatencyCache::incoming_channel_mins`]:
//!   locaware_net::LinkLatencyCache::incoming_channel_mins

mod dht;
mod exchange;
mod faults;
mod shard;
mod tally;

use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use parking_lot::{Mutex, MutexGuard, RwLock};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Barrier};

use rand::rngs::StdRng;
use rand::Rng;

use locaware_bloom::BloomParams;
use locaware_metrics::{QueryOutcome, QueryRecord, RunMetrics};
use locaware_net::{LinkLatencyCache, LocId, PhysicalTopology};
use locaware_overlay::churn::ChurnEvent;
use locaware_overlay::{
    ChurnEventKind, DhtNode, Message, MessageKind, OverlayGraph, PeerId, ProviderEntry,
};
use locaware_sim::{Duration, EventKey, RngFactory, SimTime, StreamId};
use locaware_workload::{Arrival, Catalog, KeywordHashes, QueryGenerator};

use crate::config::{ProtocolKind, SimulationConfig};
use crate::group::GroupScheme;
use crate::peer::PeerState;
use crate::protocol::Protocol;
use crate::results::{DhtRunStats, FaultRunStats, SimulationReport};

pub(crate) use exchange::locality_rank_order;

use dht::{DhtDirectory, DirectoryScratch};
use faults::FaultPlan;
use exchange::{
    completion_key, issue_key, PeerPartition, CLASS_BLOOM_SYNC, CLASS_CHURN, CLASS_DHT_REPUBLISH,
};
use shard::{ShardEvent, ShardState};
use tally::{labelled_counters, Tallies, FORWARD_DECISIONS, MESSAGE_KINDS};

/// Read-only context shared by every shard and the coordinator during a run.
///
/// The two `RwLock`s hold the only state that crosses shard boundaries: the
/// overlay graph and the peers-online snapshot. Both are written exclusively
/// by the coordinator at barriers (churn transitions) and read-locked by each
/// shard for the duration of a window drain, so the event path never blocks.
pub(crate) struct RunShared<'a> {
    pub(crate) config: &'a SimulationConfig,
    pub(crate) protocol: &'a dyn Protocol,
    pub(crate) topology: &'a PhysicalTopology,
    pub(crate) link_latencies: &'a LinkLatencyCache,
    pub(crate) loc_ids: &'a [LocId],
    pub(crate) catalog: &'a Catalog,
    pub(crate) keyword_hashes: Arc<KeywordHashes>,
    pub(crate) scheme: GroupScheme,
    pub(crate) arrivals: &'a [Arrival],
    pub(crate) query_generator: &'a QueryGenerator,
    pub(crate) rng_factory: RngFactory,
    pub(crate) partition: &'a PeerPartition,
    /// The DHT identity oracle — `Some` exactly for structured protocols
    /// ([`Protocol::uses_dht`]). Immutable for the whole run.
    pub(crate) dht: Option<DhtDirectory>,
    pub(crate) graph: RwLock<OverlayGraph>,
    pub(crate) online: RwLock<Vec<bool>>,
    /// Per-destination-shard channel lookahead: `channel_lookahead[i]` is the
    /// minimum latency over shard `i`'s incoming cross-shard channels — no
    /// message another shard sends at or after a window's start can land in
    /// shard `i` before `start + channel_lookahead[i]`. `None` means shard
    /// `i` has no incoming cross-shard channel at all (unbounded horizon);
    /// a single-shard run is `vec![None]`.
    pub(crate) channel_lookahead: Vec<Option<Duration>>,
    /// The compiled fault plan — `Some` exactly when the configuration arms
    /// any fault axis, so fault-free runs pay one `Option` check per send.
    pub(crate) faults: Option<FaultPlan>,
}

/// Everything needed to execute one protocol run over a prepared substrate.
pub(crate) struct ProtocolEngine<'a> {
    config: &'a SimulationConfig,
    protocol: Box<dyn Protocol>,
    topology: &'a PhysicalTopology,
    link_latencies: &'a LinkLatencyCache,
    loc_ids: &'a [LocId],
    catalog: &'a Catalog,
    keyword_hashes: Arc<KeywordHashes>,
    scheme: GroupScheme,
    graph: OverlayGraph,
    peers: Vec<PeerState>,
    arrivals: Vec<Arrival>,
    churn_schedule: Vec<ChurnEvent>,
    query_generator: QueryGenerator,
    churn_rng: StdRng,
    rng_factory: RngFactory,
    dht: Option<DhtDirectory>,
}

impl<'a> ProtocolEngine<'a> {
    /// Builds an engine for one run.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new(
        config: &'a SimulationConfig,
        kind: ProtocolKind,
        topology: &'a PhysicalTopology,
        link_latencies: &'a LinkLatencyCache,
        loc_ids: &'a [LocId],
        graph: &OverlayGraph,
        catalog: &'a Catalog,
        initial_shares: &[Vec<locaware_workload::FileId>],
        gids: &[crate::group::GroupId],
        arrivals: Vec<Arrival>,
        churn_schedule: Vec<ChurnEvent>,
        rng_factory: &RngFactory,
    ) -> Self {
        let protocol = crate::protocol::build_protocol(kind, config);
        let scheme = GroupScheme::new(config.group_count);
        let bloom_params = BloomParams::new(config.bloom_bits, config.bloom_hashes);
        let max_providers = protocol.max_providers_per_file(config);
        let keyword_hashes = catalog.keyword_hashes().clone();

        let mut peers: Vec<PeerState> = (0..config.peers)
            .map(|i| {
                let id = PeerId(i as u32);
                let mut state = PeerState::new(
                    id,
                    loc_ids[i],
                    gids[i],
                    bloom_params,
                    config.response_index_capacity,
                    max_providers,
                    keyword_hashes.clone(),
                );
                for &file in &initial_shares[i] {
                    state.share_file(file);
                    if protocol.uses_bloom_sync() {
                        // §5.2: Bloom routing must not miss results held by
                        // neighbours, so a peer's filter also covers the
                        // filenames it stores itself (see DESIGN.md).
                        state.advertise_keywords(catalog.filename(file).keywords());
                    }
                }
                state
            })
            .collect();

        // Neighbours exchange group ids on join (§4.2); modelled as already
        // known at simulation start, like the paper's static setup.
        for i in 0..config.peers {
            let id = PeerId(i as u32);
            for &n in graph.neighbors(id) {
                let gid = gids[n.index()];
                peers[i].record_neighbor(n, gid);
            }
        }

        // Initial Bloom exchange between neighbours ("Neighboring peers
        // exchange their group Ids as well as their Bloom filters", §4.2).
        if protocol.uses_bloom_sync() {
            let initial_blooms: Vec<_> = peers
                .iter_mut()
                .map(|p| {
                    let _ = p.take_bloom_update();
                    p.exported_bloom().clone()
                })
                .collect();
            for i in 0..config.peers {
                let id = PeerId(i as u32);
                for &n in graph.neighbors(id) {
                    let bloom = initial_blooms[n.index()].clone();
                    peers[i].set_neighbor_bloom(n, bloom);
                }
            }
        }

        // The base workload stream seeds only the generator's one-time
        // popularity permutation; per-query draws come from streams derived
        // per arrival index, so they are independent of processing order.
        let mut workload_rng = rng_factory.stream(StreamId::QueryWorkload);
        let query_generator = QueryGenerator::new(
            catalog,
            locaware_workload::QueryWorkloadConfig {
                zipf_exponent: config.zipf_exponent,
                min_keywords: config.min_query_keywords,
                max_keywords: config.max_query_keywords,
            },
            &mut workload_rng,
        );

        // Structured protocols: derive the run's DHT identities, install
        // per-peer DHT state, and seed routing tables and record stores.
        // Like the group-id and initial Bloom exchanges above, the bootstrap
        // is modelled as already converged at simulation start: every peer
        // has observed every other's node id (bucket capacities still apply,
        // so far buckets keep only their first `k` in peer-id order), and
        // each initially shared, DHT-indexed file is stored on the `k`
        // closest nodes to each of its keyword keys — no messages charged.
        let dht = if protocol.uses_dht() {
            let directory = DhtDirectory::new(rng_factory, config.peers);
            for (i, peer) in peers.iter_mut().enumerate() {
                peer.dht = Some(Box::new(DhtNode::new(
                    directory.node_id(PeerId(i as u32)),
                    config.dht.k,
                    config.dht.max_record_bytes,
                )));
            }
            // The converged tables (for each bucket, the k lowest-id peers of
            // the bucket's subtree) come from one O(n log n · k) range-split
            // walk of the directory's sorted ring — identical contents, in
            // identical bucket order, to inserting all n-1 others per peer.
            directory.for_each_bootstrap_contact(config.dht.k, |owner, contact_id, contact| {
                let inserted = peers[owner.index()]
                    .dht
                    .as_mut()
                    .expect("dht state installed for every peer when the protocol is structured")
                    .table
                    .insert(contact_id, contact);
                debug_assert!(inserted, "bootstrap contacts are pre-capped per bucket");
            });
            let all_online = vec![true; config.peers];
            let expiry = SimTime::ZERO + Duration::from_secs_f64(config.dht.record_ttl_secs);
            // With every peer online, the store targets depend only on the
            // keyword — resolve each keyword's k-closest once, not once per
            // (peer, file) sharing it.
            let mut scratch = DirectoryScratch::default();
            let mut targets_by_keyword: HashMap<u32, Vec<PeerId>> = HashMap::new();
            for i in 0..config.peers {
                let provider = ProviderEntry {
                    provider: PeerId(i as u32),
                    loc_id: loc_ids[i],
                };
                for &file in &initial_shares[i] {
                    let rank = query_generator.rank_of(file);
                    if !protocol.dht_resolves_rank(rank, catalog.len()) {
                        continue;
                    }
                    for &kw in catalog.filename(file).keywords() {
                        let targets = targets_by_keyword.entry(kw.0).or_insert_with(|| {
                            let key = directory.keyword_key(kw);
                            let mut targets = Vec::new();
                            directory.closest_online_into(
                                key,
                                &all_online,
                                config.dht.k,
                                &mut scratch,
                                &mut targets,
                            );
                            targets
                        });
                        for &target in targets.iter() {
                            peers[target.index()]
                                .dht
                                .as_mut()
                                .expect("dht state installed for every peer when the protocol is structured")
                                .store
                                .insert(kw.0, file.0, provider, expiry);
                        }
                    }
                }
            }
            Some(directory)
        } else {
            None
        };

        ProtocolEngine {
            config,
            protocol,
            topology,
            link_latencies,
            loc_ids,
            catalog,
            keyword_hashes,
            scheme,
            graph: graph.clone(),
            peers,
            arrivals,
            churn_schedule,
            query_generator,
            churn_rng: rng_factory.stream(StreamId::Churn),
            rng_factory: *rng_factory,
            dht,
        }
    }

    /// Executes the run and produces the report.
    pub(crate) fn run(mut self) -> SimulationReport {
        let mut shard_count = self.config.effective_shards();
        let mut partition = PeerPartition::locality(self.loc_ids, shard_count);

        // Per-destination channel lookaheads: shard `i`'s window may extend
        // `W_i` past the global frontier, where `W_i` lower-bounds the latency
        // of any message that can cross INTO shard `i`. Static overlay-only
        // runs only ever send along overlay links, so `W_i` is the minimum
        // incoming cross-shard link latency; churn can rewire any pair, and
        // DHT traffic travels arbitrary peer pairs from the start, so in
        // either case every shard falls back to the configured minimum pair
        // latency (rounding to integer microseconds is monotone, so the
        // rounded configured minimum bounds every rounded pair latency).
        // `None` means shard `i` has no incoming cross-shard channel
        // (unbounded horizon).
        let channel_lookahead = |partition: &PeerPartition, links_only: bool, shards: usize| {
            if shards == 1 {
                vec![None]
            } else if links_only {
                self.link_latencies
                    .incoming_channel_mins(&partition.shard_of, shards)
            } else {
                vec![Some(Duration::from_millis_f64(self.config.min_latency_ms)); shards]
            }
        };
        let links_only = self.churn_schedule.is_empty() && !self.protocol.uses_dht();
        let mut lookahead = channel_lookahead(&partition, links_only, shard_count);
        if shard_count > 1 && lookahead.contains(&Some(Duration::ZERO)) {
            // A zero lookahead means some cross-shard message could land in
            // the very window that sent it (sub-microsecond latencies rounding
            // to zero) — and a shard whose bound never exceeds the frontier
            // could not even admit its own frontier event. No positive
            // lookahead exists, so parallel windows cannot be exact. Fall back
            // to a single shard — a pure scheduling change, results are
            // identical by the engine's shard-count-invariance contract.
            shard_count = 1;
            partition = PeerPartition::locality(self.loc_ids, 1);
            lookahead = vec![None];
        }

        // Distribute the peers into their shards' slot-indexed vectors.
        let arrivals_len = self.arrivals.len();
        let mut slots: Vec<Vec<Option<PeerState>>> = partition
            .sizes
            .iter()
            .map(|&size| (0..size).map(|_| None).collect())
            .collect();
        for (i, peer) in std::mem::take(&mut self.peers).into_iter().enumerate() {
            slots[partition.shard_of[i] as usize][partition.slot_of[i] as usize] = Some(peer);
        }
        let shards: Vec<Mutex<ShardState>> = slots
            .into_iter()
            .enumerate()
            .map(|(index, peer_slots)| {
                let peers: Vec<PeerState> = peer_slots
                    .into_iter()
                    .map(|p| p.expect("partition covers every peer"))
                    .collect();
                Mutex::new(ShardState::new(
                    index as u32,
                    shard_count,
                    peers,
                    arrivals_len,
                ))
            })
            .collect();

        // Schedule the arrivals into their origin shards.
        for (index, arrival) in self.arrivals.iter().enumerate() {
            let origin = PeerId(arrival.peer as u32);
            shards[partition.shard(origin)]
                .lock()
                .queue
                .push(issue_key(arrival.at, index), ShardEvent::Issue(index as u32));
        }

        // Global transitions — Bloom sync rounds over the workload span (plus
        // a small drain margin so late responses still see fresh filters) and
        // the churn schedule — run serially at barriers, at their canonical
        // position in the event order.
        let last_arrival = self.arrivals.last().map(|a| a.at).unwrap_or(SimTime::ZERO);
        let mut control: Vec<(EventKey, ControlAction)> = Vec::new();
        if self.protocol.uses_bloom_sync() {
            let period = Duration::from_secs_f64(self.config.bloom_sync_period_secs);
            let horizon = last_arrival + Duration::from_secs(60);
            let mut t = SimTime::ZERO + period;
            let mut round = 0u64;
            while t <= horizon {
                control.push((
                    EventKey::new(t, CLASS_BLOOM_SYNC, round, 0),
                    ControlAction::BloomSync,
                ));
                round += 1;
                t += period;
            }
        }
        if self.protocol.uses_dht() {
            let mut period = Duration::from_secs_f64(self.config.dht.republish_period_secs);
            if period == Duration::ZERO {
                // A sub-microsecond period rounds to zero; pin it to the time
                // grid's resolution so the round loop always advances.
                period = Duration::from_micros(1);
            }
            let horizon = last_arrival + Duration::from_secs(60);
            let mut t = SimTime::ZERO + period;
            let mut round = 0u64;
            while t <= horizon {
                control.push((
                    EventKey::new(t, CLASS_DHT_REPUBLISH, round, 0),
                    ControlAction::DhtRepublish,
                ));
                round += 1;
                t += period;
            }
        }
        for (i, event) in self.churn_schedule.iter().enumerate() {
            control.push((
                EventKey::new(event.at, CLASS_CHURN, i as u64, 0),
                ControlAction::Churn(i),
            ));
        }
        control.sort_by_key(|&(key, _)| key);

        let shared = RunShared {
            config: self.config,
            protocol: &*self.protocol,
            topology: self.topology,
            link_latencies: self.link_latencies,
            loc_ids: self.loc_ids,
            catalog: self.catalog,
            keyword_hashes: self.keyword_hashes.clone(),
            scheme: self.scheme,
            arrivals: &self.arrivals,
            query_generator: &self.query_generator,
            rng_factory: self.rng_factory,
            partition: &partition,
            dht: self.dht.take(),
            graph: RwLock::new(std::mem::replace(&mut self.graph, OverlayGraph::new(0))),
            online: RwLock::new(vec![true; self.config.peers]),
            channel_lookahead: lookahead,
            faults: FaultPlan::new(&self.config.faults, &self.rng_factory),
        };

        let mut coordinator = Coordinator {
            control,
            next_control: 0,
            churn_schedule: std::mem::take(&mut self.churn_schedule),
            churn_rng: {
                let fresh = self.rng_factory.stream(StreamId::Churn);
                std::mem::replace(&mut self.churn_rng, fresh)
            },
            controls_dispatched: 0,
            control_end_time: SimTime::ZERO,
            max_events: self.config.max_events,
            query_outstanding: vec![0; arrivals_len],
            query_last: vec![None; arrivals_len],
            query_phase: vec![QueryPhase::Idle; arrivals_len],
            arrival_done: vec![false; arrivals_len],
            arrival_cursor: 0,
            inflight_by_peer: vec![0; self.config.peers],
            peer_seen: vec![0; self.config.peers],
            cap_epoch: 0,
            pending_prunes: Vec::new(),
            fold_touched: Vec::new(),
            bounds: vec![EventKey::MAX; shard_count],
            windows: 0,
            engaged_windows: 0,
            capped_windows: 0,
            prev_dispatched: vec![0; shard_count],
            critical_path_events: 0,
            crash_departures: 0,
        };

        if shard_count == 1 || !worker_threads_available() {
            // Single shard — or a single-CPU host, where worker threads can
            // only add scheduling overhead: drain the shards on this thread.
            // The state transitions are identical either way (the executor is
            // a pure scheduling choice), so results do not depend on the host.
            coordinator.drive(&shared, &shards, &mut Executor::Inline);
        } else {
            let barrier = Barrier::new(shard_count + 1);
            let cmd = Mutex::new(Cmd::Run(0));
            let panicked = AtomicBool::new(false);
            std::thread::scope(|scope| {
                for index in 0..shard_count {
                    let shared = &shared;
                    let shards = &shards;
                    let barrier = &barrier;
                    let cmd = &cmd;
                    let panicked = &panicked;
                    scope.spawn(move || loop {
                        barrier.wait();
                        let command = *cmd.lock();
                        match command {
                            Cmd::Quit => break,
                            Cmd::Run(cap) => {
                                if !panicked.load(Ordering::SeqCst) {
                                    let outcome = catch_unwind(AssertUnwindSafe(|| {
                                        // The per-shard window bound was set
                                        // by the coordinator at plan time.
                                        shards[index]
                                            .lock()
                                            .drain(shared, cap);
                                    }));
                                    if outcome.is_err() {
                                        panicked.store(true, Ordering::SeqCst);
                                    }
                                }
                                barrier.wait();
                            }
                        }
                    });
                }
                let mut executor = Executor::Threaded {
                    barrier: &barrier,
                    cmd: &cmd,
                    panicked: &panicked,
                    released: false,
                };
                // The coordinator itself runs protocol code (inline windows,
                // barrier transitions); if it panics while the workers are
                // parked at the barrier, the scope would join threads that
                // are still waiting — a hang instead of a test failure. Catch
                // the unwind, release the workers, then resume it.
                let outcome = catch_unwind(AssertUnwindSafe(|| {
                    coordinator.drive(&shared, &shards, &mut executor)
                }));
                executor.shutdown();
                if let Err(panic) = outcome {
                    std::panic::resume_unwind(panic);
                }
            });
        }

        let shard_states: Vec<ShardState> = shards
            .into_iter()
            .map(|m| m.into_inner())
            .collect();
        coordinator.print_stats(&shard_states, &shared.channel_lookahead);
        self.finalize(&partition, shard_states, coordinator)
    }

    fn finalize(
        self,
        partition: &PeerPartition,
        shards: Vec<ShardState>,
        coordinator: Coordinator,
    ) -> SimulationReport {
        let mut totals = Tallies::new();
        for shard in &shards {
            totals.merge(&shard.tallies);
        }

        // Per-query merge: origin-local tracking lives in the origin's shard;
        // per-query message counts are summed across shards; the first local
        // match is the canonical-key minimum across shards. Arrival index
        // order is issue order (arrivals are time-sorted, canonical keys
        // tie-break by index), so records renumber contiguously in it.
        let mut metrics = RunMetrics::new();
        let mut emitted = 0u64;
        let mut dht_lookups = 0u64;
        let mut dht_depth_total = 0u64;
        for index in 0..self.arrivals.len() {
            let origin = PeerId(self.arrivals[index].peer as u32);
            let Some(tracking) = shards[partition.shard(origin)].tracking.get(&(index as u32))
            else {
                continue;
            };
            if tracking.dht_lookup {
                dht_lookups += 1;
                dht_depth_total += u64::from(tracking.dht_depth);
            }
            let messages: u64 = shards.iter().map(|s| s.messages[index]).sum();
            let hit = shards
                .iter()
                .filter_map(|s| s.hits[index])
                .min_by_key(|h| h.key);
            metrics.push(QueryRecord {
                index: emitted,
                requestor: tracking.origin.0,
                outcome: if tracking.satisfied {
                    QueryOutcome::Satisfied
                } else {
                    QueryOutcome::Unsatisfied
                },
                messages,
                download_distance_ms: tracking.download_distance_ms,
                locality_match: tracking.locality_match,
                providers_offered: tracking.providers_offered,
                hops_to_hit: hit.map(|h| h.hops),
                answered_from_cache: hit.map(|h| h.from_cache).unwrap_or(false),
                completion_time_ms: tracking
                    .completed_at
                    .map(|t| t.duration_since(self.arrivals[index].at).as_millis_f64()),
            });
            emitted += 1;
        }

        let total_replicas: usize = shards
            .iter()
            .flat_map(|s| s.peers.iter())
            .map(|p| p.shared_file_count())
            .sum();
        let total_cached: usize = shards
            .iter()
            .flat_map(|s| s.peers.iter())
            .map(|p| p.response_index.len())
            .sum();

        let dht = self.protocol.uses_dht().then(|| {
            let mut stats = DhtRunStats {
                lookups: dht_lookups,
                lookup_depth_total: dht_depth_total,
                store_messages: totals.message_counts[tally::kind_index(MessageKind::DhtStore)],
                records: 0,
                provider_entries: 0,
                record_bytes: 0,
                truncated_entries: 0,
                expired_entries: 0,
            };
            for peer in shards.iter().flat_map(|s| s.peers.iter()) {
                if let Some(node) = peer.dht.as_ref() {
                    stats.records += node.store.records();
                    stats.provider_entries += node.store.entries();
                    stats.record_bytes += node.store.bytes();
                    stats.truncated_entries += node.store.truncated_entries();
                    stats.expired_entries += node.store.expired_entries();
                }
            }
            stats
        });

        let faults = (!self.config.faults.is_disabled()).then_some(FaultRunStats {
            messages_lost: totals.messages_lost,
            dht_stores_lost: totals.dht_stores_lost,
            query_timeouts: totals.query_timeouts,
            query_retransmits: totals.query_retransmits,
            dht_step_timeouts: totals.dht_step_timeouts,
            crash_departures: coordinator.crash_departures,
        });

        let dispatched_events =
            coordinator.controls_dispatched + shards.iter().map(|s| s.dispatched).sum::<u64>();
        let end_time = shards
            .iter()
            .map(|s| s.last_event_time)
            .chain(std::iter::once(coordinator.control_end_time))
            .max()
            .unwrap_or(SimTime::ZERO);

        SimulationReport {
            protocol: self.protocol.kind(),
            queries_issued: totals.queries_issued,
            metrics,
            message_counters: labelled_counters(&MESSAGE_KINDS, &totals.message_counts),
            routing_decisions: labelled_counters(&FORWARD_DECISIONS, &totals.decision_counts),
            background_messages: totals.background_messages,
            total_file_replicas: total_replicas,
            total_cached_index_entries: total_cached,
            simulated_end_time_secs: end_time.as_secs_f64(),
            dispatched_events,
            dht,
            faults,
        }
    }
}

/// Whether spawning per-shard worker threads can possibly pay off: requires
/// more than one CPU, overridable for tests via `LOCAWARE_SHARD_THREADS`
/// (`1`/`true` forces workers even on one CPU, `0`/`false` forces the inline
/// executor). Read once per process.
fn worker_threads_available() -> bool {
    use std::sync::OnceLock;
    static AVAILABLE: OnceLock<bool> = OnceLock::new();
    *AVAILABLE.get_or_init(|| {
        match std::env::var("LOCAWARE_SHARD_THREADS").ok().as_deref() {
            Some("1") | Some("true") => return true,
            Some("0") | Some("false") => return false,
            _ => {}
        }
        std::thread::available_parallelism().is_ok_and(|n| n.get() > 1)
    })
}

/// A global transition handled serially at a barrier.
#[derive(Debug, Clone, Copy)]
enum ControlAction {
    /// One periodic Bloom synchronisation round over all peers.
    BloomSync,
    /// One periodic DHT republish round over all peers.
    DhtRepublish,
    /// The `i`-th entry of the churn schedule.
    Churn(usize),
}

/// A window command handed to the worker threads.
#[derive(Debug, Clone, Copy)]
enum Cmd {
    /// Drain the local queue up to the shard's planned `window_bound`,
    /// dispatching at most `cap` events.
    Run(u64),
    /// The run is over; exit the worker loop.
    Quit,
}

/// How a window's parallel phase is executed.
enum Executor<'e> {
    /// Drain every shard on the current thread (the `shards = 1` fast path —
    /// no barriers, no contention — and the reference execution).
    Inline,
    /// Signal the parked worker threads through the barrier. `released` is
    /// set once the workers have been told to quit, so the release happens
    /// exactly once no matter which path (normal shutdown or worker-panic
    /// propagation) gets there first.
    Threaded {
        barrier: &'e Barrier,
        cmd: &'e Mutex<Cmd>,
        panicked: &'e AtomicBool,
        released: bool,
    },
}

impl Executor<'_> {
    fn run_window(&mut self, shared: &RunShared<'_>, shards: &[Mutex<ShardState>], cap: u64) {
        match self {
            Executor::Inline => {
                for shard in shards {
                    shard
                        .lock()
                        .drain(shared, cap);
                }
            }
            Executor::Threaded {
                barrier,
                cmd,
                panicked,
                released,
            } => {
                *cmd.lock() = Cmd::Run(cap);
                barrier.wait();
                barrier.wait();
                if panicked.load(Ordering::SeqCst) {
                    // Release the workers before propagating, so the panic
                    // surfaces as a test failure instead of a barrier hang.
                    *cmd.lock() = Cmd::Quit;
                    barrier.wait();
                    *released = true;
                    panic!("a sharded-engine worker thread panicked");
                }
            }
        }
    }

    fn shutdown(&mut self) {
        if let Executor::Threaded {
            barrier,
            cmd,
            released,
            ..
        } = self
        {
            if !*released {
                *cmd.lock() = Cmd::Quit;
                barrier.wait();
                *released = true;
            }
        }
    }
}

/// Where a query is in its lifecycle, as the coordinator's barrier folds see
/// it. Transitions: `Idle → Open` when the folded outstanding count first
/// goes positive; `Open → PendingPrune` when it returns to zero for a query
/// that escaped its origin shard (completion detected, duplicate-map prune
/// deferred until the global frontier passes the completion's canonical key);
/// `Open → Closed` directly for never-escaped queries (the origin shard
/// already completed them inline, at the exact canonical position);
/// `PendingPrune → Closed` when the deferred prune is applied.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum QueryPhase {
    Idle,
    Open,
    PendingPrune,
    Closed,
}

/// The serial half of the sharded run: window planning, lifecycle folds,
/// barrier merges and global transitions.
struct Coordinator {
    control: Vec<(EventKey, ControlAction)>,
    next_control: usize,
    churn_schedule: Vec<ChurnEvent>,
    churn_rng: StdRng,
    controls_dispatched: u64,
    control_end_time: SimTime,
    max_events: u64,
    /// Query lifecycle fold state, all arrival-indexed: the globally folded
    /// outstanding-message count, the maximum consumption key folded so far,
    /// and the lifecycle phase.
    query_outstanding: Vec<i64>,
    query_last: Vec<Option<EventKey>>,
    query_phase: Vec<QueryPhase>,
    /// Arrival index → its issue event was dispatched by some shard; used to
    /// skip settled arrivals when scanning for window caps.
    arrival_done: Vec<bool>,
    /// First arrival index not yet known settled (all below are done).
    arrival_cursor: usize,
    /// Peer index → number of its queries that are open or pending a prune.
    /// A pending issue by such a peer must not run ahead of the global
    /// frontier: its duplicate-suppression read is not yet exact.
    inflight_by_peer: Vec<u32>,
    /// Epoch-stamped "peer has an earlier pending issue in this cap scan"
    /// marker (`peer_seen[p] == cap_epoch`); avoids clearing per window.
    peer_seen: Vec<u32>,
    cap_epoch: u32,
    /// Completions of escaped queries whose duplicate-map prune waits for the
    /// global frontier to pass the completion's canonical (class 4) key:
    /// until then a lagging shard may still hold a same-peer issue that must
    /// observe the query as in flight.
    pending_prunes: Vec<(EventKey, u32)>,
    /// Scratch: arrival indexes touched by the current fold.
    fold_touched: Vec<u32>,
    /// Scratch: per-shard window bounds planned for the current window.
    bounds: Vec<EventKey>,
    /// Parallelism profile of the run (see [`Coordinator::print_stats`]):
    /// windows run, windows with 2+ active shards, windows shortened by a
    /// lifecycle cap, per-shard dispatch counts at the last barrier, and the
    /// critical-path event count — the wall clock an ideal machine with one
    /// core per shard could not go below.
    windows: u64,
    engaged_windows: u64,
    capped_windows: u64,
    prev_dispatched: Vec<u64>,
    critical_path_events: u64,
    /// Churn departures the fault plan turned into crash-stops (no goodbyes).
    crash_departures: u64,
}

impl Coordinator {
    /// The main loop: alternate parallel windows and serial control steps
    /// until every queue is empty and the control schedule is exhausted (or
    /// the event budget trips).
    fn drive(
        &mut self,
        shared: &RunShared<'_>,
        shards: &[Mutex<ShardState>],
        executor: &mut Executor<'_>,
    ) {
        loop {
            let mut guards = lock_all(shards);
            if guards.len() > 1 {
                self.fold_lifecycle(shared, &mut guards);
            }
            let dispatched: u64 =
                self.controls_dispatched + guards.iter().map(|g| g.dispatched).sum::<u64>();
            let Some(remaining) = self.max_events.checked_sub(dispatched).filter(|&r| r > 0)
            else {
                break; // Event budget exhausted: stop at this barrier.
            };

            let next_event: Option<EventKey> =
                guards.iter().filter_map(|g| g.queue.peek_key()).min();
            let next_control = self.control.get(self.next_control).map(|&(key, _)| key);
            if guards.len() > 1 {
                // Every event strictly below the global frontier has been
                // processed (outboxes are merged), so deferred duplicate-map
                // prunes whose completion key the frontier has passed are now
                // safe: no pending issue can still order before them.
                self.apply_ready_prunes(shared, &mut guards, next_event.unwrap_or(EventKey::MAX));
            }

            match (next_event, next_control) {
                (None, None) => break,
                (event, Some(control)) if event.is_none_or(|e| control < e) => {
                    self.run_control(shared, &mut guards, control);
                }
                (Some(event), control) => {
                    // Per-shard window ends: each shard's incoming-channel
                    // lookahead past the earliest pending event, capped by the
                    // next control transition and by any lifecycle cap (a
                    // pending issue whose duplicate-suppression read is not
                    // yet exact). Jumping the window start to the earliest
                    // event skips dead time, so sparse stretches cost no
                    // barriers.
                    for (index, bound) in self.bounds.iter_mut().enumerate() {
                        let horizon = match shared.channel_lookahead[index] {
                            Some(w) => EventKey::before_time(event.time.saturating_add(w)),
                            None => EventKey::MAX,
                        };
                        *bound = control.map_or(horizon, |c| c.min(horizon));
                    }
                    let capped = guards.len() > 1 && self.cap_bounds(shared, event);
                    for (guard, &bound) in guards.iter_mut().zip(&self.bounds) {
                        guard.window_bound = bound;
                    }
                    // Windows whose pending events all sit in one shard gain
                    // nothing from waking the workers: drain that shard on
                    // this thread (identical state transitions, no barrier).
                    // Sparse stretches of a run — where a whole query burst
                    // fits inside one locality — cost no synchronisation.
                    let active = guards
                        .iter()
                        .filter(|g| g.queue.peek_key().is_some_and(|k| k < g.window_bound))
                        .count();
                    if active <= 1 {
                        for guard in guards.iter_mut() {
                            guard.drain(shared, remaining);
                        }
                    } else {
                        drop(guards);
                        executor.run_window(shared, shards, remaining);
                        guards = lock_all(shards);
                    }
                    merge_outboxes(&mut guards);
                    // Critical-path accounting: a window's parallel phase is
                    // as slow as its busiest shard.
                    self.windows += 1;
                    self.engaged_windows += u64::from(active > 1);
                    self.capped_windows += u64::from(capped);
                    let mut busiest = 0u64;
                    for (index, guard) in guards.iter().enumerate() {
                        let delta = guard.dispatched - self.prev_dispatched[index];
                        self.prev_dispatched[index] = guard.dispatched;
                        busiest = busiest.max(delta);
                    }
                    self.critical_path_events += busiest;
                }
                (None, Some(_)) => {
                    unreachable!("the guard above admits every (None, Some) pair")
                }
            }
        }
    }

    /// Folds every shard's [`tally::LifecycleFlux`] into the global lifecycle
    /// slabs and detects completions: a query whose folded outstanding count
    /// returns to zero has had its last in-flight message consumed (any
    /// not-yet-folded consumption would require a not-yet-folded send, and
    /// sends fold no later than the barrier after the window that made them —
    /// so a zero here is a true global zero). Never-escaped queries were
    /// already completed inline by their origin shard at the exact canonical
    /// position; escaped ones are handed to [`Coordinator::apply_ready_prunes`]
    /// so the duplicate-map prune waits until the frontier passes the
    /// completion key.
    fn fold_lifecycle(
        &mut self,
        shared: &RunShared<'_>,
        guards: &mut [MutexGuard<'_, ShardState>],
    ) {
        let mut touched = std::mem::take(&mut self.fold_touched);
        for guard in guards.iter_mut() {
            for index in guard.processed_arrivals.drain(..) {
                self.arrival_done[index as usize] = true;
            }
            let flux = guard.flux.as_mut().expect("multi-shard runs carry flux");
            let outstanding = &mut self.query_outstanding;
            let last = &mut self.query_last;
            flux.drain(|index, delta, consumed, _escaped| {
                let i = index as usize;
                outstanding[i] += delta;
                if let Some(key) = consumed {
                    let slot = &mut last[i];
                    *slot = Some(slot.map_or(key, |k| k.max(key)));
                }
                touched.push(index);
            });
        }
        for &index in &touched {
            let i = index as usize;
            debug_assert!(
                self.query_outstanding[i] >= 0,
                "query {i}: a consumption folded before its send"
            );
            // Duplicate touches are harmless: every transition below is
            // guarded by the current phase.
            match self.query_phase[i] {
                QueryPhase::Idle if self.query_outstanding[i] > 0 => {
                    self.query_phase[i] = QueryPhase::Open;
                    self.inflight_by_peer[shared.arrivals[i].peer] += 1;
                }
                QueryPhase::Idle => {
                    // Issued and fully consumed between two barriers: that is
                    // only possible inside one shard (a cross-shard hop lands
                    // at least one window later), so the origin completed it
                    // inline, exactly. Nothing to fold.
                    self.query_phase[i] = QueryPhase::Closed;
                }
                QueryPhase::Open if self.query_outstanding[i] == 0 => {
                    let last = self.query_last[i]
                        .expect("an opened query closes via at least one consumption");
                    let origin = PeerId(shared.arrivals[i].peer as u32);
                    let origin_shard = shared.partition.shard(origin);
                    if guards[origin_shard].escaped[i] {
                        // Completion detected, but a shard lagging behind the
                        // one that consumed the last message may still hold a
                        // same-peer issue ordering before it: keep the query
                        // counted in-flight and defer the duplicate-map prune
                        // until the frontier passes the completion key.
                        self.query_phase[i] = QueryPhase::PendingPrune;
                        self.pending_prunes
                            .push((completion_key(last.time, i), index));
                    } else {
                        // Never escaped: the origin shard completed it inline
                        // at the exact canonical position.
                        self.query_phase[i] = QueryPhase::Closed;
                        self.inflight_by_peer[shared.arrivals[i].peer] -= 1;
                    }
                }
                _ => {}
            }
        }
        touched.clear();
        self.fold_touched = touched;
    }

    /// Applies every deferred duplicate-map prune whose canonical completion
    /// key the global frontier has passed: all events below `frontier` are
    /// processed, so no issue can still observe the query as in flight.
    fn apply_ready_prunes(
        &mut self,
        shared: &RunShared<'_>,
        guards: &mut [MutexGuard<'_, ShardState>],
        frontier: EventKey,
    ) {
        let mut i = 0;
        while i < self.pending_prunes.len() {
            let (key, index) = self.pending_prunes[i];
            if key < frontier {
                self.pending_prunes.swap_remove(i);
                let idx = index as usize;
                let origin = PeerId(shared.arrivals[idx].peer as u32);
                guards[shared.partition.shard(origin)].complete_locally(shared, idx, key.time);
                self.query_phase[idx] = QueryPhase::Closed;
                self.inflight_by_peer[origin.index()] -= 1;
            } else {
                i += 1;
            }
        }
    }

    /// Shortens shard bounds so no issue runs before its duplicate-suppression
    /// read is exact, scanning pending arrivals in canonical order. An issue
    /// needs deferring when its peer has an open (or pending-prune) query —
    /// whose completion another shard may process at a smaller canonical key
    /// than the issue's — or an earlier same-peer pending issue (whose query's
    /// fate is equally unsettled). The arrival at the global frontier `start`
    /// is exempt: everything below it is processed and folded, so the
    /// lifecycle state is exact at its position — which also guarantees every
    /// window admits at least its frontier event. Returns whether any bound
    /// was shortened. Caps only delay issues, never change what they observe,
    /// so they cannot affect results.
    fn cap_bounds(&mut self, shared: &RunShared<'_>, start: EventKey) -> bool {
        while self.arrival_cursor < self.arrival_done.len()
            && self.arrival_done[self.arrival_cursor]
        {
            self.arrival_cursor += 1;
        }
        self.cap_epoch = self.cap_epoch.wrapping_add(1);
        let epoch = self.cap_epoch;
        let mut capped = false;
        // Arrivals are time-sorted and canonical keys tie-break by index, so
        // array order is canonical order. Once `max_bound` (the furthest any
        // shard may still reach) is behind an arrival, no later arrival can
        // run this window either.
        let mut max_bound = self.bounds.iter().copied().max().unwrap_or(EventKey::MAX);
        for idx in self.arrival_cursor..self.arrival_done.len() {
            if self.arrival_done[idx] {
                continue;
            }
            let arrival = &shared.arrivals[idx];
            let key = issue_key(arrival.at, idx);
            if key >= max_bound {
                break;
            }
            let shard = shared.partition.shard_of[arrival.peer] as usize;
            if key >= self.bounds[shard] {
                // Not runnable this window (natural horizon or an earlier
                // cap already excludes it) — and neither is any later
                // same-peer arrival, so it needs no marking either.
                continue;
            }
            if key > start
                && (self.inflight_by_peer[arrival.peer] > 0 || self.peer_seen[arrival.peer] == epoch)
            {
                self.bounds[shard] = key;
                capped = true;
                max_bound = self.bounds.iter().copied().max().unwrap_or(EventKey::MAX);
            } else {
                self.peer_seen[arrival.peer] = epoch;
            }
        }
        capped
    }

    /// Handles one control transition (everything strictly before its
    /// canonical key has already drained).
    fn run_control(
        &mut self,
        shared: &RunShared<'_>,
        guards: &mut [MutexGuard<'_, ShardState>],
        key: EventKey,
    ) {
        let (_, action) = self.control[self.next_control];
        self.next_control += 1;
        self.controls_dispatched += 1;
        self.critical_path_events += 1; // Controls are inherently serial.
        self.control_end_time = key.time;
        match action {
            ControlAction::BloomSync => self.bloom_sync(shared, guards, key.time),
            ControlAction::DhtRepublish => self.dht_republish(shared, guards, key.time),
            ControlAction::Churn(index) => {
                let event = self.churn_schedule[index];
                self.apply_churn(shared, guards, event);
            }
        }
        // Control transitions may send (Bloom deltas); merge immediately so
        // the next window-planning pass sees them in the destination queues.
        // Every shard has drained past `key`, so it is the merge floor.
        for guard in guards.iter_mut() {
            guard.window_bound = key;
        }
        merge_outboxes(guards);
    }

    /// When `LOCAWARE_SHARD_STATS=1`, prints the run's parallelism profile to
    /// stderr: total vs critical-path events bound how much an ideal machine
    /// with one core per shard could compress the run
    /// (`ideal_speedup = total / critical_path`). Measured, deterministic
    /// quantities — the profile is how `BENCH_prN.json` grounds multi-core
    /// projections on single-core CI hardware.
    fn print_stats(&self, shards: &[ShardState], lookahead: &[Option<Duration>]) {
        if std::env::var("LOCAWARE_SHARD_STATS").as_deref() != Ok("1") {
            return;
        }
        let dispatched: u64 =
            self.controls_dispatched + shards.iter().map(|s| s.dispatched).sum::<u64>();
        let critical = self.critical_path_events.max(1);
        let lookahead_list = lookahead
            .iter()
            .map(|w| w.map_or(0, Duration::as_micros).to_string())
            .collect::<Vec<_>>()
            .join(",");
        eprintln!(
            "shard-stats: shards={} lookahead_us={} windows={} engaged_windows={} \
             capped_windows={} events={} critical_path_events={} ideal_speedup={:.2}",
            shards.len(),
            lookahead_list,
            self.windows,
            self.engaged_windows,
            self.capped_windows,
            dispatched,
            critical,
            dispatched as f64 / critical as f64,
        );
    }

    /// One Bloom synchronisation round: every online peer with a dirty filter
    /// pushes the delta to its active neighbours, in peer-id order exactly
    /// like the sequential engine's single sync event.
    fn bloom_sync(
        &mut self,
        shared: &RunShared<'_>,
        guards: &mut [MutexGuard<'_, ShardState>],
        now: SimTime,
    ) {
        let graph = shared.graph.read();
        for i in 0..shared.config.peers {
            let from = PeerId(i as u32);
            let shard = shared.partition.shard(from);
            let slot = shared.partition.slot(from);
            if !guards[shard].peers[slot].online {
                continue;
            }
            let Some(delta) = guards[shard].peers[slot].take_bloom_update() else {
                continue;
            };
            let neighbors: Vec<PeerId> = graph
                .neighbors(from)
                .iter()
                .copied()
                .filter(|&n| graph.is_active(n))
                .collect();
            for n in neighbors {
                let message = Message::BloomDelta {
                    delta: delta.clone(),
                };
                guards[shard].send_background(shared, now, from, n, message);
            }
        }
    }

    /// One DHT republish round: every online peer sweeps expired entries from
    /// its own record store, then re-announces each of its shared,
    /// DHT-indexed files to the *current* `k` closest online index nodes —
    /// in peer-id order, serially at the barrier, exactly like a Bloom sync
    /// round. Each remote store transfer is a real background message paying
    /// link latency (the receiver stamps the TTL at delivery time);
    /// self-targets store locally for free. This is what re-homes records
    /// whose index nodes departed and refreshes TTLs so live records outlast
    /// `record_ttl_secs`.
    fn dht_republish(
        &mut self,
        shared: &RunShared<'_>,
        guards: &mut [MutexGuard<'_, ShardState>],
        now: SimTime,
    ) {
        let Some(directory) = shared.dht.as_ref() else {
            return;
        };
        let online = shared.online.read();
        let ttl = Duration::from_secs_f64(shared.config.dht.record_ttl_secs);
        // The online set is fixed for the whole round (coordinator-serial),
        // so a keyword's k-closest targets are too — resolve each keyword
        // once per round no matter how many peers re-announce it.
        let mut scratch = DirectoryScratch::default();
        let mut targets_by_keyword: HashMap<u32, Vec<PeerId>> = HashMap::new();
        for i in 0..shared.config.peers {
            let from = PeerId(i as u32);
            let shard = shared.partition.shard(from);
            let slot = shared.partition.slot(from);
            if !guards[shard].peers[slot].online {
                continue;
            }
            if let Some(node) = guards[shard].peers[slot].dht.as_mut() {
                node.store.expire(now);
            }
            let provider = ProviderEntry {
                provider: from,
                loc_id: shared.loc_ids[i],
            };
            let files: Vec<locaware_workload::FileId> =
                guards[shard].peers[slot].shared_files().collect();
            for file in files {
                let rank = shared.query_generator.rank_of(file);
                if !shared.protocol.dht_resolves_rank(rank, shared.catalog.len()) {
                    continue;
                }
                for &kw in shared.catalog.filename(file).keywords() {
                    let targets = targets_by_keyword.entry(kw.0).or_insert_with(|| {
                        let key = directory.keyword_key(kw);
                        let mut targets = Vec::new();
                        directory.closest_online_into(
                            key,
                            &online,
                            shared.config.dht.k,
                            &mut scratch,
                            &mut targets,
                        );
                        targets
                    });
                    for &target in targets.iter() {
                        if target == from {
                            guards[shard].peers[slot]
                                .dht
                                .as_mut()
                                .expect("structured peers carry DHT state")
                                .store
                                .insert(kw.0, file.0, provider, now + ttl);
                        } else {
                            let message = Message::DhtStore {
                                keyword: kw.0,
                                file: file.0,
                                provider,
                            };
                            guards[shard].send_background(shared, now, from, target, message);
                        }
                    }
                }
            }
        }
    }

    /// One churn transition, mutating the graph, the affected peers (possibly
    /// across several shards) and the online snapshot — all under the write
    /// locks the window drains read.
    fn apply_churn(
        &mut self,
        shared: &RunShared<'_>,
        guards: &mut [MutexGuard<'_, ShardState>],
        event: ChurnEvent,
    ) {
        let peer = event.peer;
        if peer.index() >= shared.config.peers {
            return;
        }
        let shard = shared.partition.shard(peer);
        let slot = shared.partition.slot(peer);
        let mut graph = shared.graph.write();
        let mut online = shared.online.write();
        match event.kind {
            ChurnEventKind::Leave => {
                if !guards[shard].peers[slot].online {
                    return;
                }
                // Under a crash-stop fault plan the peer vanishes without
                // goodbyes: the graph edges still drop (dead links carry no
                // traffic either way) and the online snapshot flips, but no
                // neighbour learns of the departure — their Bloom views, DHT
                // routing tables and provider indexes keep the ghost until
                // TTLs, lookup filters or the next sync round catch up.
                // In-flight messages to the peer are consumed as lost by the
                // ordinary offline-receiver rule.
                let crash = shared.faults.as_ref().is_some_and(|f| f.crash_stop);
                let old_neighbors = graph.depart(peer);
                guards[shard].peers[slot].online = false;
                online[peer.index()] = false;
                if crash {
                    self.crash_departures += 1;
                    return;
                }
                for n in old_neighbors {
                    let ns = shared.partition.shard(n);
                    let nslot = shared.partition.slot(n);
                    guards[ns].peers[nslot].forget_neighbor(peer);
                }
                if shared.dht.is_some() {
                    // Failure detection modelled at the barrier, like the
                    // rewiring itself: the departed node leaves every online
                    // routing table (in peer-id order). Its *record entries*
                    // are dropped only under proactive invalidation — by
                    // default they linger until TTL expiry or a lookup's
                    // online filter skips them, which is exactly the index
                    // staleness the churn-storm comparison measures.
                    for other in 0..shared.config.peers {
                        if other == peer.index() {
                            continue;
                        }
                        let other_id = PeerId(other as u32);
                        let os = shared.partition.shard(other_id);
                        let oslot = shared.partition.slot(other_id);
                        if !guards[os].peers[oslot].online {
                            continue;
                        }
                        if let Some(node) = guards[os].peers[oslot].dht.as_mut() {
                            node.table.remove(peer);
                            if shared.config.proactive_provider_invalidation {
                                node.store.remove_provider(peer);
                            }
                        }
                    }
                }
                if shared.config.proactive_provider_invalidation {
                    // CUP-style proactive invalidation, modelled as an
                    // oracle: every online peer drops its index entries for
                    // the departed provider (O(affected) each, via the
                    // provider → files postings map) and updates its Bloom
                    // filter for entries that vanish. Runs serially at the
                    // churn barrier, in peer-id order, so it is part of the
                    // canonical event order and deterministic for any shard
                    // count. Off by default: the lazy selection-time filter
                    // is the paper's (and the seed's) behaviour.
                    for other in 0..shared.config.peers {
                        if other == peer.index() {
                            continue;
                        }
                        let other_id = PeerId(other as u32);
                        let os = shared.partition.shard(other_id);
                        let oslot = shared.partition.slot(other_id);
                        if guards[os].peers[oslot].online {
                            guards[os].peers[oslot].forget_provider(peer);
                        }
                    }
                }
            }
            ChurnEventKind::Join => {
                if guards[shard].peers[slot].online {
                    return;
                }
                graph.rejoin(peer);
                guards[shard].peers[slot].online = true;
                guards[shard].peers[slot].reset_volatile_state();
                online[peer.index()] = true;
                // Re-wire to `average_degree` random online peers.
                let degree = shared.config.average_degree.round() as usize;
                let candidates: Vec<PeerId> = graph.active_peers().filter(|&p| p != peer).collect();
                for _ in 0..degree.max(1) {
                    if candidates.is_empty() {
                        break;
                    }
                    let pick = candidates[self.churn_rng.gen_range(0..candidates.len())];
                    if graph.add_edge(peer, pick) {
                        let peer_gid = guards[shard].peers[slot].gid;
                        let ps = shared.partition.shard(pick);
                        let pslot = shared.partition.slot(pick);
                        let pick_gid = guards[ps].peers[pslot].gid;
                        guards[shard].peers[slot].record_neighbor(pick, pick_gid);
                        guards[ps].peers[pslot].record_neighbor(peer, peer_gid);
                    }
                }
                if let Some(directory) = shared.dht.as_ref() {
                    // The joiner bootstraps a fresh routing table from the
                    // online population and announces its node id to every
                    // online peer, in peer-id order. Its record store
                    // restarts empty (`reset_volatile_state` cleared it);
                    // records it should host migrate back at the next
                    // republish round, and its own files re-announce then
                    // too.
                    let joiner_id = directory.node_id(peer);
                    for other in 0..shared.config.peers {
                        if other == peer.index() {
                            continue;
                        }
                        let other_id = PeerId(other as u32);
                        let os = shared.partition.shard(other_id);
                        let oslot = shared.partition.slot(other_id);
                        if !guards[os].peers[oslot].online {
                            continue;
                        }
                        if let Some(node) = guards[shard].peers[slot].dht.as_mut() {
                            node.table.insert(directory.node_id(other_id), other_id);
                        }
                        if let Some(node) = guards[os].peers[oslot].dht.as_mut() {
                            node.table.insert(joiner_id, peer);
                        }
                    }
                }
            }
        }
    }
}

fn lock_all<'g>(shards: &'g [Mutex<ShardState>]) -> Vec<MutexGuard<'g, ShardState>> {
    shards
        .iter()
        .map(|m| m.lock())
        .collect()
}

/// Moves every outboxed cross-shard delivery into its destination queue. The
/// canonical keys were fixed at send time and are never below the
/// *destination's* window bound just drained (the incoming-channel lookahead
/// guarantee), so this is a plain batch of heap insertions.
fn merge_outboxes(guards: &mut [MutexGuard<'_, ShardState>]) {
    let mut moves: Vec<(usize, exchange::Outbound)> = Vec::new();
    for guard in guards.iter_mut() {
        for (destination, bucket) in guard.take_outbound() {
            for outbound in bucket {
                moves.push((destination, outbound));
            }
        }
    }
    for (destination, outbound) in moves {
        debug_assert!(
            outbound.key >= guards[destination].window_bound,
            "cross-shard delivery {:?} would land inside the destination window bounded by {:?}",
            outbound.key,
            guards[destination].window_bound
        );
        guards[destination].queue.push(
            outbound.key,
            ShardEvent::Deliver {
                from: outbound.from,
                to: outbound.to,
                message: outbound.message,
            },
        );
    }
}
