//! Cross-shard exchange: deterministic peer partitioning, the canonical event
//! key encoding, and the outboxes merged at window barriers.
//!
//! ## Canonical event order
//!
//! The sharded engine's determinism contract — same seed ⇒ bit-identical
//! reports for *every* shard count — rests on a total event order that is a
//! pure function of each event's identity, never of which queue it sat in or
//! when it was scheduled. The encoding into [`EventKey`]'s
//! `(time, class, a, b)`:
//!
//! | event            | class | `a`                         | `b`            |
//! |------------------|-------|-----------------------------|----------------|
//! | query issue      | 0     | arrival index               | 0              |
//! | Bloom sync round | 1     | round index                 | 0              |
//! | churn transition | 2     | schedule index              | 0              |
//! | message delivery | 3     | `(to << 32) \| from`        | sender seq     |
//! | query completion | 4     | arrival index               | 0              |
//! | fault timeout    | 6     | arrival index               | discriminator  |
//!
//! The class ranks mirror the sequential engine's initial-scheduling order at
//! equal times (arrivals, then maintenance, then churn, then in-flight
//! deliveries). Deliveries tie-break by destination, then source, then a
//! send sequence number counted at the sender — link latencies are fixed per
//! pair, so two messages on one link arriving simultaneously were sent
//! simultaneously and the sender's count orders them by send order.
//!
//! A **query completion** is the synthesized event marking the consumption of
//! a query's last in-flight message (see the lifecycle tracking in
//! [`super::shard`]): its canonical position is the consuming delivery's
//! time with class 4, so at equal times it orders *after* every delivery —
//! a query whose final message is consumed at `t` is still "in flight" to
//! any class-0 issue at `t`, exactly as in a single-queue run. No physical
//! event is queued for it: because no other event class can order between a
//! class-3 terminal delivery and its class-4 completion at the same time,
//! applying the completion as a direct state transition when it is detected
//! is observationally identical to dispatching it from the queue.
//!
//! ## Partitioning
//!
//! Peers are partitioned by *locality*: sorted by `(locId, peer id)` and cut
//! into contiguous, balanced chunks. The partition only affects performance,
//! never results — but locality-aligned shards push the minimum cross-shard
//! link latency (the window length, see
//! [`LinkLatencyCache::min_cross_partition_latency`]) far above the global
//! minimum link latency, which is what buys long windows and real parallelism.
//!
//! [`LinkLatencyCache::min_cross_partition_latency`]:
//!   locaware_net::LinkLatencyCache::min_cross_partition_latency

use locaware_net::LocId;
use locaware_overlay::{Message, PeerId};
use locaware_sim::{EventKey, SimTime};

/// Event-class rank of query issues (pre-scheduled arrivals).
pub(crate) const CLASS_ISSUE: u8 = 0;
/// Event-class rank of periodic Bloom synchronisation rounds.
pub(crate) const CLASS_BLOOM_SYNC: u8 = 1;
/// Event-class rank of churn transitions.
pub(crate) const CLASS_CHURN: u8 = 2;
/// Event-class rank of message deliveries.
pub(crate) const CLASS_DELIVER: u8 = 3;
/// Event-class rank of synthesized query completions (after deliveries at
/// equal times — a query completing at `t` is still in flight to an issue
/// or delivery at `t`).
pub(crate) const CLASS_COMPLETE: u8 = 4;
/// Event-class rank of periodic DHT republish rounds (structured protocols
/// only): after completions at equal times, so a republish at `t` sees the
/// storage state every query completing at `t` left behind.
pub(crate) const CLASS_DHT_REPUBLISH: u8 = 5;
/// Event-class rank of fault-plan timeout firings (query retransmit
/// deadlines and DHT lookup step deadlines). Last at equal times, so a
/// reply delivered exactly at the deadline wins the race against the
/// timeout — the timeout handler then sees the reply's effect and stands
/// down. Timeouts are origin-local: they are scheduled into the waiting
/// peer's own shard queue and never cross a shard boundary, so they do not
/// interact with channel lookaheads.
pub(crate) const CLASS_TIMEOUT: u8 = 6;

/// The canonical key of the `index`-th query arrival firing at `at`.
pub(crate) fn issue_key(at: SimTime, index: usize) -> EventKey {
    EventKey::new(at, CLASS_ISSUE, index as u64, 0)
}

/// The canonical key of query `index`'s completion, synthesized at the time
/// of the delivery that consumed its last in-flight message.
pub(crate) fn completion_key(at: SimTime, index: usize) -> EventKey {
    EventKey::new(at, CLASS_COMPLETE, index as u64, 0)
}

/// The canonical key of a fault-plan timeout for query `index`:
/// `discriminator` distinguishes simultaneous timers of one query (retry
/// attempt number for retransmit deadlines, awaited peer id for DHT step
/// deadlines).
pub(crate) fn timeout_key(at: SimTime, index: usize, discriminator: u64) -> EventKey {
    EventKey::new(at, CLASS_TIMEOUT, index as u64, discriminator)
}

/// The canonical key of a message delivery: `seq` is the sender-side send
/// sequence number — monotone in the sender's event order, so it FIFO-orders
/// deliveries that tie on `(time, to, from)` (same-link ties imply the same
/// send instant, where send order is the sequential engine's order too).
pub(crate) fn deliver_key(at: SimTime, to: PeerId, from: PeerId, seq: u64) -> EventKey {
    EventKey::new(
        at,
        CLASS_DELIVER,
        (u64::from(to.0) << 32) | u64::from(from.0),
        seq,
    )
}

/// Peer ids sorted by `(locId, id)` — the canonical locality rank order
/// (`order[s]` = the peer of locality rank `s`). Both the shard partition
/// below and the weighted-cluster workload mapping in
/// [`crate::simulation::Simulation`] cut contiguous chunks of this order, so
/// "a locality region" means the same peers to the engine and the workload.
pub(crate) fn locality_rank_order(loc_ids: &[LocId]) -> Vec<u32> {
    let mut order: Vec<u32> = (0..loc_ids.len() as u32).collect();
    order.sort_by_key(|&p| (loc_ids[p as usize].value(), p));
    order
}

/// A deterministic assignment of peers to shards.
///
/// `shard_of[p]` is peer `p`'s shard and `slot_of[p]` its dense index within
/// that shard's local state vectors — every shard owns a contiguous range of
/// the locality-sorted peer order, so per-shard state is a plain `Vec` rather
/// than a map.
#[derive(Debug, Clone)]
pub(crate) struct PeerPartition {
    /// Peer index → owning shard.
    pub shard_of: Vec<u32>,
    /// Peer index → slot within the owning shard.
    pub slot_of: Vec<u32>,
    /// Shard → number of peers it owns.
    pub sizes: Vec<usize>,
}

impl PeerPartition {
    /// Partitions `loc_ids.len()` peers into `shards` locality-aligned,
    /// balanced cells: peers sorted by `(locId, id)`, cut into contiguous
    /// chunks whose sizes differ by at most one.
    ///
    /// # Panics
    /// Panics if `shards` is zero or exceeds the peer count.
    pub fn locality(loc_ids: &[LocId], shards: usize) -> Self {
        let peers = loc_ids.len();
        assert!(shards >= 1, "at least one shard");
        assert!(shards <= peers, "at most one shard per peer");

        let order = locality_rank_order(loc_ids);

        let base = peers / shards;
        let remainder = peers % shards;
        let mut shard_of = vec![0u32; peers];
        let mut slot_of = vec![0u32; peers];
        let mut sizes = Vec::with_capacity(shards);
        let mut cursor = 0usize;
        for shard in 0..shards {
            let size = base + usize::from(shard < remainder);
            for slot in 0..size {
                let peer = order[cursor + slot] as usize;
                shard_of[peer] = shard as u32;
                slot_of[peer] = slot as u32;
            }
            sizes.push(size);
            cursor += size;
        }
        PeerPartition {
            shard_of,
            slot_of,
            sizes,
        }
    }

    /// The shard owning `peer`.
    pub fn shard(&self, peer: PeerId) -> usize {
        self.shard_of[peer.index()] as usize
    }

    /// `peer`'s slot within its owning shard.
    pub fn slot(&self, peer: PeerId) -> usize {
        self.slot_of[peer.index()] as usize
    }
}

/// Tags the `from` peer of a delivery the fault plan dropped at send time.
/// The message still travels to the destination queue (its canonical key —
/// which always carries the *untagged* sender — fixes *when* the loss is
/// observed) but is consumed there without being processed. A tag bit
/// instead of a separate `bool` keeps the delivery payload within the two
/// cache lines the flooding hot path's queue entries are sized to; peer ids
/// stay far below it (the partition tables index per-peer `Vec`s, so a real
/// id this large could never have built a substrate).
pub(crate) const LOST_BIT: u32 = 1 << 31;

/// A message waiting at a window barrier to be merged into another shard's
/// queue. The canonical key was fixed at send time, so the merge is a plain
/// heap insertion — no re-ordering decisions are made at the barrier.
#[derive(Debug, Clone)]
pub(crate) struct Outbound {
    /// The delivery's canonical key (at the arrival time).
    pub key: EventKey,
    /// Sending peer, possibly tagged with [`LOST_BIT`].
    pub from: PeerId,
    /// Receiving peer.
    pub to: PeerId,
    /// The message.
    pub message: Message,
}

// Cross-shard merges move these by value at every window barrier; keep the
// payload within two cache lines.
const _: () = assert!(
    std::mem::size_of::<Outbound>() <= 128,
    "Outbound grew past 128 bytes"
);

#[cfg(test)]
mod tests {
    use super::*;
    use locaware_sim::Duration;

    #[test]
    fn locality_partition_is_balanced_and_contiguous() {
        // 10 peers in 3 locality groups, interleaved by id.
        let loc_ids: Vec<LocId> = [0u32, 1, 2, 0, 1, 2, 0, 1, 2, 0]
            .iter()
            .map(|&l| LocId(l))
            .collect();
        let partition = PeerPartition::locality(&loc_ids, 3);
        assert_eq!(partition.sizes, vec![4, 3, 3]);
        assert_eq!(partition.shard_of.len(), 10);
        // Locality group 0 = peers {0,3,6,9} fills shard 0 exactly.
        for p in [0u32, 3, 6, 9] {
            assert_eq!(partition.shard(PeerId(p)), 0, "peer {p}");
        }
        // Slots are dense 0..size within each shard.
        for shard in 0..3 {
            let mut slots: Vec<u32> = (0..10u32)
                .filter(|&p| partition.shard(PeerId(p)) == shard)
                .map(|p| partition.slot_of[p as usize])
                .collect();
            slots.sort_unstable();
            let expected: Vec<u32> = (0..partition.sizes[shard] as u32).collect();
            assert_eq!(slots, expected, "shard {shard}");
        }
    }

    #[test]
    fn single_shard_partition_owns_everything() {
        let loc_ids: Vec<LocId> = (0..5).map(|i| LocId(i % 2)).collect();
        let partition = PeerPartition::locality(&loc_ids, 1);
        assert_eq!(partition.sizes, vec![5]);
        for p in 0..5u32 {
            assert_eq!(partition.shard(PeerId(p)), 0);
        }
        // Slots follow the locality-sorted order, not the id order.
        let mut seen: Vec<u32> = (0..5u32).map(|p| partition.slot_of[p as usize]).collect();
        seen.sort_unstable();
        assert_eq!(seen, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn canonical_keys_rank_classes_then_discriminators() {
        let t = SimTime::from_millis(5);
        let issue = issue_key(t, 7);
        let deliver = deliver_key(t, PeerId(1), PeerId(2), 0);
        assert!(issue < deliver, "issues precede deliveries at equal times");
        assert!(issue_key(t, 7) < issue_key(t, 8), "arrival order breaks ties");
        assert!(
            deliver_key(t, PeerId(1), PeerId(2), 0) < deliver_key(t, PeerId(1), PeerId(2), 1),
            "same link: sender FIFO order"
        );
        assert!(
            deliver_key(t, PeerId(1), PeerId(9), 5) < deliver_key(t, PeerId(2), PeerId(0), 0),
            "destination dominates source"
        );
        let later = t + Duration::from_micros(1);
        assert!(deliver < issue_key(later, 0), "time dominates everything");
    }

    #[test]
    fn timeouts_order_after_every_other_class_at_equal_times() {
        let t = SimTime::from_millis(5);
        let timeout = timeout_key(t, 3, 0);
        assert!(
            deliver_key(t, PeerId(u32::MAX), PeerId(u32::MAX), u64::MAX) < timeout,
            "a reply delivered exactly at the deadline beats the timeout"
        );
        assert!(completion_key(t, 3) < timeout, "completions precede timeouts");
        assert!(
            timeout_key(t, 3, 0) < timeout_key(t, 3, 1),
            "discriminator breaks same-query ties"
        );
        assert!(timeout_key(t, 3, 9) < timeout_key(t, 4, 0), "query index dominates");
        let later = t + Duration::from_micros(1);
        assert!(timeout < issue_key(later, 0), "time dominates class");
    }

    #[test]
    fn completions_order_after_every_delivery_at_equal_times() {
        let t = SimTime::from_millis(5);
        let complete = completion_key(t, 3);
        assert!(
            deliver_key(t, PeerId(u32::MAX), PeerId(u32::MAX), u64::MAX) < complete,
            "a completion at t follows even the last delivery at t"
        );
        assert!(issue_key(t, 9) < complete, "issues at t still see it in flight");
        let later = t + Duration::from_micros(1);
        assert!(complete < issue_key(later, 0), "time dominates class");
        assert!(completion_key(t, 3) < completion_key(t, 4), "arrival order ties");
    }
}
