//! Flat per-shard tallies and their merge into report counters.
//!
//! Every shard keeps its traffic and routing statistics as flat arrays indexed
//! by discriminant (a labelled `CounterSet<String>` would allocate and
//! tree-walk per event on the hot path). All tally fields are *commutative* —
//! sums of per-event increments — so merging the shards in any order yields
//! the same totals, which is one of the two pillars of the sharded engine's
//! bit-identical-for-every-shard-count guarantee (the other is the canonical
//! event order in [`super::exchange`]). The labelled sets reports carry are
//! materialised once, from the merged totals, in
//! [`ProtocolEngine::run`](super::ProtocolEngine).

use locaware_metrics::CounterSet;
use locaware_overlay::{ForwardDecision, MessageKind};
use locaware_sim::EventKey;

/// Every message kind with its report label, in tally-array index order.
pub(super) const MESSAGE_KINDS: [(MessageKind, &str); 10] = [
    (MessageKind::Query, "query"),
    (MessageKind::QueryResponse, "query-response"),
    (MessageKind::BloomFull, "bloom-full"),
    (MessageKind::BloomDelta, "bloom-delta"),
    (MessageKind::GroupAnnounce, "group-announce"),
    (MessageKind::Ping, "ping"),
    (MessageKind::Pong, "pong"),
    (MessageKind::DhtLookup, "dht-lookup"),
    (MessageKind::DhtLookupReply, "dht-lookup-reply"),
    (MessageKind::DhtStore, "dht-store"),
];

/// Every forwarding decision with its report label, in tally-array index order.
pub(super) const FORWARD_DECISIONS: [(ForwardDecision, &str); 5] = [
    (ForwardDecision::Flood, "flood"),
    (ForwardDecision::BloomMatch, "bloom-match"),
    (ForwardDecision::GidMatch, "gid-match"),
    (ForwardDecision::HighDegree, "high-degree"),
    (ForwardDecision::NotForwarded, "not-forwarded"),
];

pub(super) fn kind_index(kind: MessageKind) -> usize {
    match kind {
        MessageKind::Query => 0,
        MessageKind::QueryResponse => 1,
        MessageKind::BloomFull => 2,
        MessageKind::BloomDelta => 3,
        MessageKind::GroupAnnounce => 4,
        MessageKind::Ping => 5,
        MessageKind::Pong => 6,
        MessageKind::DhtLookup => 7,
        MessageKind::DhtLookupReply => 8,
        MessageKind::DhtStore => 9,
    }
}

pub(super) fn decision_index(decision: ForwardDecision) -> usize {
    match decision {
        ForwardDecision::Flood => 0,
        ForwardDecision::BloomMatch => 1,
        ForwardDecision::GidMatch => 2,
        ForwardDecision::HighDegree => 3,
        ForwardDecision::NotForwarded => 4,
    }
}

/// One shard's additive statistics.
#[derive(Debug, Clone)]
pub(super) struct Tallies {
    /// Message sends by kind discriminant.
    pub message_counts: [u64; MESSAGE_KINDS.len()],
    /// Routing decisions by discriminant.
    pub decision_counts: [u64; FORWARD_DECISIONS.len()],
    /// Messages not attributable to a query (Bloom synchronisation traffic).
    pub background_messages: u64,
    /// Queries issued by this shard's peers.
    pub queries_issued: u64,
    /// Messages dropped by the fault plan at send time (loss coin or active
    /// outage window), counted in the sending shard.
    pub messages_lost: u64,
    /// DHT store transfers among the lost — the pressure the next republish
    /// round has to repair.
    pub dht_stores_lost: u64,
    /// Query retransmit deadlines that fired with the query still unanswered
    /// (including the final deadline after retries were exhausted).
    pub query_timeouts: u64,
    /// Query re-floods actually issued (bounded by the policy's max retries).
    pub query_retransmits: u64,
    /// DHT lookup step deadlines that released a stalled in-flight slot.
    pub dht_step_timeouts: u64,
}

impl Tallies {
    pub(super) fn new() -> Self {
        Tallies {
            message_counts: [0; MESSAGE_KINDS.len()],
            decision_counts: [0; FORWARD_DECISIONS.len()],
            background_messages: 0,
            queries_issued: 0,
            messages_lost: 0,
            dht_stores_lost: 0,
            query_timeouts: 0,
            query_retransmits: 0,
            dht_step_timeouts: 0,
        }
    }

    /// Adds another shard's totals into this one (commutative).
    pub(super) fn merge(&mut self, other: &Tallies) {
        for (mine, theirs) in self.message_counts.iter_mut().zip(&other.message_counts) {
            *mine += theirs;
        }
        for (mine, theirs) in self.decision_counts.iter_mut().zip(&other.decision_counts) {
            *mine += theirs;
        }
        self.background_messages += other.background_messages;
        self.queries_issued += other.queries_issued;
        self.messages_lost += other.messages_lost;
        self.dht_stores_lost += other.dht_stores_lost;
        self.query_timeouts += other.query_timeouts;
        self.query_retransmits += other.query_retransmits;
        self.dht_step_timeouts += other.dht_step_timeouts;
    }
}

/// One shard's per-query lifecycle flux since the last barrier: dense
/// arrival-indexed deltas of the outstanding-message count, the canonical key
/// of the latest consumption, and whether the query's traffic crossed a shard
/// boundary. Like [`Tallies`], every field is *commutative* across shards
/// (deltas sum, keys max, escape flags or), so the coordinator can fold the
/// shards in any order at a barrier and recover the exact global count —
/// which is what lets it synthesize the canonical completion event (class 4
/// in [`super::exchange`]) for queries whose messages spread over several
/// shards. Queries that never escape their origin shard complete inline in
/// [`super::shard`] and the coordinator's fold merely confirms them.
#[derive(Debug)]
pub(super) struct LifecycleFlux {
    /// Arrival index → net outstanding-message delta since the last drain
    /// (+1 per query-charged send, −1 per consumed delivery).
    delta: Vec<i64>,
    /// Arrival index → canonical key of the latest consumption this shard
    /// processed since the last drain (`None` while only sends accumulated).
    last_consumed: Vec<Option<EventKey>>,
    /// Arrival index → true once this shard outboxed one of the query's
    /// messages across a shard boundary.
    escaped: Vec<bool>,
    /// Membership mask for `dirty`.
    touched: Vec<bool>,
    /// The arrival indexes touched since the last drain.
    dirty: Vec<u32>,
}

impl LifecycleFlux {
    pub(super) fn new(arrivals: usize) -> Self {
        LifecycleFlux {
            delta: vec![0; arrivals],
            last_consumed: vec![None; arrivals],
            escaped: vec![false; arrivals],
            touched: vec![false; arrivals],
            dirty: Vec::new(),
        }
    }

    fn touch(&mut self, index: usize) {
        if !self.touched[index] {
            self.touched[index] = true;
            self.dirty.push(index as u32);
        }
    }

    /// Records a query-charged send (+1 outstanding).
    pub(super) fn charge(&mut self, index: usize) {
        self.touch(index);
        self.delta[index] += 1;
    }

    /// Records the consumption of a query-charged delivery at `key`.
    pub(super) fn consume(&mut self, index: usize, key: EventKey) {
        self.touch(index);
        self.delta[index] -= 1;
        let last = &mut self.last_consumed[index];
        *last = Some(last.map_or(key, |k| k.max(key)));
    }

    /// Records that one of the query's messages left this shard.
    pub(super) fn mark_escaped(&mut self, index: usize) {
        self.touch(index);
        self.escaped[index] = true;
    }

    /// Drains every touched entry into `fold`, resetting the flux. Called by
    /// the coordinator at barriers while it holds the shard's lock.
    pub(super) fn drain(
        &mut self,
        mut fold: impl FnMut(u32, i64, Option<EventKey>, bool),
    ) {
        for index in self.dirty.drain(..) {
            let i = index as usize;
            fold(index, self.delta[i], self.last_consumed[i], self.escaped[i]);
            self.delta[i] = 0;
            self.last_consumed[i] = None;
            self.escaped[i] = false;
            self.touched[i] = false;
        }
    }
}

/// Converts a tally array into the labelled counter set reports carry.
/// Untouched labels are omitted, matching incremental `CounterSet` use.
pub(super) fn labelled_counters<T: Copy>(
    table: &[(T, &'static str)],
    counts: &[u64],
) -> CounterSet<String> {
    let mut set = CounterSet::new();
    for ((_, label), &count) in table.iter().zip(counts) {
        if count > 0 {
            set.add(label.to_string(), count);
        }
    }
    set
}

#[cfg(test)]
mod tests {
    use super::*;
    use locaware_sim::SimTime;

    #[test]
    fn lifecycle_flux_folds_commutatively_and_resets() {
        let key = |us: u64| EventKey::new(SimTime::from_micros(us), 3, 0, 0);
        let mut flux = LifecycleFlux::new(4);
        flux.charge(1);
        flux.charge(1);
        flux.consume(1, key(50));
        flux.consume(3, key(20));
        flux.consume(3, key(80));
        flux.mark_escaped(3);

        let mut seen = Vec::new();
        flux.drain(|i, delta, last, escaped| seen.push((i, delta, last, escaped)));
        seen.sort_by_key(|&(i, ..)| i);
        assert_eq!(
            seen,
            vec![
                (1, 1, Some(key(50)), false),
                (3, -2, Some(key(80)), true),
            ],
            "deltas sum, consumption keys max, escape flags or"
        );

        // Drained entries reset completely; untouched entries never surface.
        let mut after = Vec::new();
        flux.charge(1);
        flux.drain(|i, delta, last, escaped| after.push((i, delta, last, escaped)));
        assert_eq!(after, vec![(1, 1, None, false)]);
    }

    #[test]
    fn tally_tables_and_index_functions_agree() {
        for (i, &(kind, _)) in MESSAGE_KINDS.iter().enumerate() {
            assert_eq!(kind_index(kind), i, "MESSAGE_KINDS[{i}] out of order");
        }
        for (i, &(decision, _)) in FORWARD_DECISIONS.iter().enumerate() {
            assert_eq!(decision_index(decision), i, "FORWARD_DECISIONS[{i}] out of order");
        }
    }

    #[test]
    fn labelled_counters_omit_untouched_labels() {
        let mut counts = [0u64; MESSAGE_KINDS.len()];
        counts[kind_index(MessageKind::Query)] = 3;
        counts[kind_index(MessageKind::Pong)] = 1;
        let set = labelled_counters(&MESSAGE_KINDS, &counts);
        assert_eq!(set.len(), 2, "zero counters must not appear in reports");
        assert_eq!(set.get(&"query".to_string()), 3);
        assert_eq!(set.get(&"pong".to_string()), 1);
    }

    #[test]
    fn tally_merge_is_commutative() {
        let mut a = Tallies::new();
        a.message_counts[0] = 3;
        a.decision_counts[4] = 1;
        a.background_messages = 2;
        a.queries_issued = 5;
        a.messages_lost = 4;
        a.query_timeouts = 2;
        let mut b = Tallies::new();
        b.message_counts[0] = 4;
        b.message_counts[6] = 1;
        b.queries_issued = 7;
        b.messages_lost = 1;
        b.query_retransmits = 3;
        b.dht_step_timeouts = 2;
        b.dht_stores_lost = 1;

        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab.message_counts, ba.message_counts);
        assert_eq!(ab.decision_counts, ba.decision_counts);
        assert_eq!(ab.background_messages, ba.background_messages);
        assert_eq!(ab.queries_issued, 12);
        assert_eq!(ab.messages_lost, 5);
        assert_eq!(ab.query_timeouts, ba.query_timeouts);
        assert_eq!(ab.query_retransmits, 3);
        assert_eq!(ab.dht_step_timeouts, 2);
        assert_eq!(ab.dht_stores_lost, 1);
    }
}
