//! Fixture self-tests for the determinism lint.
//!
//! Every rule is demonstrated twice: a known-bad snippet asserted to fire at
//! the exact line, and a known-clean sibling (annotated, test-scoped, or
//! simply not matching) asserted to stay silent. The snippets are analyzed
//! under fabricated in-scope paths — nothing here touches the real tree, so
//! these tests pin the *rules*, not the workspace's current state.

use std::collections::BTreeMap;

use locaware_lint::ratchet::Ratchet;
use locaware_lint::{analyze_source, check_ratchet, FileScope, Finding, Rule};

/// A path inside a deterministic crate: every rule applies.
const CORE: &str = "crates/core/src/fixture.rs";
/// A bench path: wall-clock is its job, ambient RNG still is not.
const BENCH: &str = "crates/bench/src/bin/fixture.rs";

fn findings(path: &str, source: &str) -> Vec<Finding> {
    analyze_source(path, source).0
}

#[track_caller]
fn assert_fires(path: &str, source: &str, rule: Rule, line: usize) {
    let found = findings(path, source);
    assert!(
        found.iter().any(|f| f.rule == rule && f.line == line),
        "expected {rule} at line {line}, got: {found:#?}"
    );
}

#[track_caller]
fn assert_silent(path: &str, source: &str) {
    let found = findings(path, source);
    assert!(found.is_empty(), "expected no findings, got: {found:#?}");
}

// ---------------------------------------------------------------- D001

#[test]
fn d001_fires_on_tracked_receiver_iteration() {
    let source = "\
use std::collections::HashMap;

fn total(counts: &HashMap<u32, u64>) -> u64 {
    let mut sum = 0;
    for (_key, value) in counts.iter() {
        sum += value;
    }
    sum
}
";
    assert_fires(CORE, source, Rule::D001, 5);
}

#[test]
fn d001_fires_on_bare_for_loop_over_hash_set() {
    let source = "\
use std::collections::HashSet;

fn collect(set: HashSet<u32>) -> Vec<u32> {
    let mut out = Vec::new();
    for id in set {
        out.push(id);
    }
    out
}
";
    assert_fires(CORE, source, Rule::D001, 5);
}

#[test]
fn d001_fires_on_extend_from_hash_map() {
    let source = "\
use std::collections::HashMap;

fn drain_into(sink: &mut Vec<(u32, u64)>, map: HashMap<u32, u64>) {
    sink.extend(map);
}
";
    assert_fires(CORE, source, Rule::D001, 4);
}

#[test]
fn d001_fires_on_collect_bound_names() {
    let source = "\
use std::collections::HashMap;

fn round_trip(pairs: Vec<(u32, u64)>) -> Vec<u32> {
    let index = pairs.into_iter().collect::<HashMap<u32, u64>>();
    index.keys().copied().collect()
}
";
    assert_fires(CORE, source, Rule::D001, 5);
}

#[test]
fn d001_silent_on_vec_iteration() {
    let source = "\
fn total(counts: &[u64]) -> u64 {
    let mut sum = 0;
    for value in counts.iter() {
        sum += value;
    }
    sum
}
";
    assert_silent(CORE, source);
}

#[test]
fn d001_silent_in_test_module() {
    let source = "\
use std::collections::HashMap;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn order_free_assertion() {
        let counts: HashMap<u32, u64> = HashMap::new();
        assert_eq!(counts.iter().count(), 0);
    }
}
";
    assert_silent(CORE, source);
}

#[test]
fn d001_silent_when_annotated_with_reason() {
    let source = "\
use std::collections::HashMap;

fn smallest(counts: &HashMap<u32, u64>) -> Option<u32> {
    // lint:allow(hash-iter): min over the total (value, key) order — every visit order agrees
    counts.iter().map(|(&k, &v)| (v, k)).min().map(|(_, k)| k)
}
";
    // The allow both silences D001 and counts as used (no D000 here either).
    assert_silent(CORE, source);
}

#[test]
fn d001_out_of_scope_in_compat_and_lint() {
    let source = "\
use std::collections::HashMap;

fn leak(map: HashMap<u32, u64>) -> Vec<u32> {
    map.keys().copied().collect()
}
";
    assert_silent("crates/compat/rand/src/lib.rs", source);
    assert_silent("crates/lint/src/rules.rs", source);
}

// ---------------------------------------------------------------- D002

#[test]
fn d002_fires_on_instant_now() {
    let source = "\
use std::time::Instant;

fn stamp() -> Instant {
    Instant::now()
}
";
    assert_fires(CORE, source, Rule::D002, 4);
}

#[test]
fn d002_fires_on_system_time() {
    let source = "\
use std::time::SystemTime;
";
    assert_fires(CORE, source, Rule::D002, 1);
}

#[test]
fn d002_silent_in_bench() {
    let source = "\
use std::time::Instant;

fn stamp() -> Instant {
    Instant::now()
}
";
    assert_silent(BENCH, source);
}

#[test]
fn d002_silent_on_instant_in_string_or_comment() {
    let source = "\
// Instant::now() would break determinism — hence SimTime.
fn label() -> &'static str {
    \"Instant::now\"
}
";
    assert_silent(CORE, source);
}

// ---------------------------------------------------------------- D003

#[test]
fn d003_fires_on_thread_rng() {
    let source = "\
fn roll() -> u64 {
    let mut rng = rand::thread_rng();
    rng.gen()
}
";
    assert_fires(CORE, source, Rule::D003, 2);
}

#[test]
fn d003_fires_on_rand_random_path() {
    let source = "\
fn roll() -> u64 {
    rand::random()
}
";
    assert_fires(CORE, source, Rule::D003, 2);
}

#[test]
fn d003_fires_even_in_tests_and_bench() {
    // A nondeterministic test is a broken regression net for a determinism
    // contract, and bench inputs must replay identically across runs — D003
    // deliberately has no test or bench exemption.
    let source = "\
#[cfg(test)]
mod tests {
    #[test]
    fn flaky() {
        let seed = rand::rngs::StdRng::from_entropy();
        let _ = seed;
    }
}
";
    assert_fires(CORE, source, Rule::D003, 5);
    assert_fires(BENCH, source, Rule::D003, 5);
}

#[test]
fn d003_silent_on_seeded_streams() {
    let source = "\
use rand::rngs::StdRng;
use rand::SeedableRng;

fn stream(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}
";
    assert_silent(CORE, source);
}

// ---------------------------------------------------------------- D004

#[test]
fn d004_counts_non_test_unwrap_sites_with_lines() {
    let source = "\
fn first(values: &[u32]) -> u32 {
    *values.first().unwrap()
}

fn second(values: &[u32]) -> u32 {
    *values.get(1).expect(\"two elements\")
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_only_unwraps_are_free() {
        assert_eq!(Some(1).unwrap(), 1);
    }
}
";
    let (found, sites) = analyze_source(CORE, source);
    assert!(found.is_empty(), "unwraps alone never fire directly: {found:#?}");
    assert_eq!(sites, Some(vec![2, 6]), "exact non-test unwrap/expect lines");
}

#[test]
fn d004_ratchet_flags_over_under_and_vanished() {
    let ratchet = Ratchet::parse(
        "[unwrap]\n\
         \"crates/core/src/a.rs\" = 1\n\
         \"crates/core/src/gone.rs\" = 2\n",
    )
    .expect("fixture ratchet parses");

    let mut counts = BTreeMap::new();
    let mut sites = BTreeMap::new();
    // a.rs grew past its baseline of 1; b.rs is new and must start at zero.
    counts.insert("crates/core/src/a.rs".to_string(), 2);
    sites.insert("crates/core/src/a.rs".to_string(), vec![10, 20]);
    counts.insert("crates/core/src/b.rs".to_string(), 1);
    sites.insert("crates/core/src/b.rs".to_string(), vec![5]);

    let found = check_ratchet(&counts, &sites, &ratchet);
    // Over-baseline reports at the first site past the baseline (the newest).
    assert!(found.iter().any(|f| f.file == "crates/core/src/a.rs"
        && f.rule == Rule::D004
        && f.line == 20));
    assert!(found.iter().any(|f| f.file == "crates/core/src/b.rs"
        && f.rule == Rule::D004
        && f.line == 5));
    // The entry for the deleted file is stale.
    assert!(found.iter().any(|f| f.file == "crates/core/src/gone.rs"
        && f.rule == Rule::D004));
    assert_eq!(found.len(), 3);
}

#[test]
fn d004_ratchet_rejects_banked_but_unclaimed_burn_down() {
    let ratchet = Ratchet::parse("[unwrap]\n\"crates/core/src/a.rs\" = 3\n")
        .expect("fixture ratchet parses");
    let mut counts = BTreeMap::new();
    let mut sites = BTreeMap::new();
    counts.insert("crates/core/src/a.rs".to_string(), 1);
    sites.insert("crates/core/src/a.rs".to_string(), vec![10]);
    let found = check_ratchet(&counts, &sites, &ratchet);
    // Counts may only go down *through* --update-ratchet, so a too-high
    // baseline is itself a finding: the burn-down must be banked.
    assert_eq!(found.len(), 1);
    assert_eq!(found[0].rule, Rule::D004);
    assert!(found[0].message.contains("stale ratchet"), "{}", found[0].message);
}

#[test]
fn d004_ratchet_matches_clean_tree() {
    let ratchet = Ratchet::parse("[unwrap]\n\"crates/core/src/a.rs\" = 1\n")
        .expect("fixture ratchet parses");
    let mut counts = BTreeMap::new();
    let mut sites = BTreeMap::new();
    counts.insert("crates/core/src/a.rs".to_string(), 1);
    sites.insert("crates/core/src/a.rs".to_string(), vec![10]);
    counts.insert("crates/core/src/zero.rs".to_string(), 0);
    sites.insert("crates/core/src/zero.rs".to_string(), vec![]);
    assert!(check_ratchet(&counts, &sites, &ratchet).is_empty());
}

#[test]
fn d004_ratchet_round_trips_through_render() {
    let mut counts = BTreeMap::new();
    counts.insert("crates/core/src/a.rs".to_string(), 2);
    counts.insert("crates/core/src/zero.rs".to_string(), 0);
    let rendered = Ratchet::render(&counts);
    let parsed = Ratchet::parse(&rendered).expect("rendered ratchet parses");
    // Zero-count files are held at zero implicitly, not listed.
    assert_eq!(parsed.unwrap.len(), 1);
    assert_eq!(parsed.unwrap.get("crates/core/src/a.rs"), Some(&2));
}

// ---------------------------------------------------------------- D005

#[test]
fn d005_fires_on_float_compound_assignment_in_parallel_callback() {
    let source = "\
fn merge(pool: &Pool, items: &[f64]) -> f64 {
    let mut total: f64 = 0.0;
    pool.map_indexed(items, |_index, value| {
        total += value;
    });
    total
}
";
    assert_fires(CORE, source, Rule::D005, 4);
}

#[test]
fn d005_fires_on_float_sum_in_parallel_callback() {
    let source = "\
fn merge(pool: &Pool, rows: &[Vec<f64>]) -> Vec<f64> {
    pool.map_indexed(rows, |_index, row| {
        row.iter().sum::<f64>()
    })
}
";
    assert_fires(CORE, source, Rule::D005, 3);
}

#[test]
fn d005_silent_on_integer_accumulation() {
    let source = "\
fn merge(pool: &Pool, items: &[u64]) -> u64 {
    let mut total: u64 = 0;
    pool.map_indexed(items, |_index, value| {
        total += value;
    });
    total
}
";
    assert_silent(CORE, source);
}

#[test]
fn d005_silent_outside_parallel_callbacks() {
    // Sequential float accumulation is fine: the order is the program order.
    let source = "\
fn total(items: &[f64]) -> f64 {
    let mut sum: f64 = 0.0;
    for value in items {
        sum += value;
    }
    sum
}
";
    assert_silent(CORE, source);
}

#[test]
fn d005_silent_when_annotated_with_ordering_argument() {
    let source = "\
fn merge(pool: &Pool, items: &[f64]) -> f64 {
    let mut total: f64 = 0.0;
    pool.map_indexed(items, |_index, value| {
        // lint:allow(float-accum): per-index slots are disjoint; the fold over slots is sequential
        total += value;
    });
    total
}
";
    assert_silent(CORE, source);
}

// ---------------------------------------------------------------- D000

#[test]
fn d000_fires_on_reasonless_allow() {
    let source = "\
use std::collections::HashMap;

fn leak(map: &HashMap<u32, u64>) -> usize {
    // lint:allow(hash-iter)
    map.keys().count()
}
";
    // The reason-less allow is a finding AND does not silence the rule.
    assert_fires(CORE, source, Rule::D000, 4);
    assert_fires(CORE, source, Rule::D001, 5);
}

#[test]
fn d000_fires_on_unknown_key() {
    let source = "\
fn nothing() {
    // lint:allow(hash-itre): typo in the key
}
";
    assert_fires(CORE, source, Rule::D000, 2);
}

#[test]
fn d000_fires_on_malformed_allow() {
    let source = "\
fn nothing() {
    // lint:allow hash-iter: forgot the parentheses
}
";
    assert_fires(CORE, source, Rule::D000, 2);
}

#[test]
fn d000_fires_on_unused_allow() {
    let source = "\
fn nothing() {
    // lint:allow(hash-iter): nothing iterates here any more
    let x = 1;
    let _ = x;
}
";
    assert_fires(CORE, source, Rule::D000, 2);
}

// ---------------------------------------------------------------- scope

#[test]
fn scope_table_matches_the_documented_coverage() {
    let core = FileScope::of("crates/core/src/engine/mod.rs");
    assert!(core.deterministic && core.wall_clock && core.ambient_rng);

    let core_tests = FileScope::of("tests/determinism.rs");
    assert!(!core_tests.deterministic && core_tests.wall_clock && core_tests.ambient_rng);

    let bench = FileScope::of("crates/bench/src/bin/shard_scaling.rs");
    assert!(!bench.deterministic && !bench.wall_clock && bench.ambient_rng);

    let compat = FileScope::of("crates/compat/criterion/src/lib.rs");
    assert!(!compat.deterministic && !compat.wall_clock && !compat.ambient_rng);

    let lint = FileScope::of("crates/lint/src/main.rs");
    assert!(!lint.deterministic && !lint.wall_clock && !lint.ambient_rng);
}
