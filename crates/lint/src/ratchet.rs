//! The D004 unwrap/expect ratchet.
//!
//! `lint-ratchet.toml` commits, per library file, the number of
//! `.unwrap()`/`.expect(..)` call sites in non-test code. The rule is
//! monotone: counts may only go **down**. A file above its baseline fails the
//! lint at the first excess site; a file below its baseline fails too
//! ("stale ratchet") so the committed numbers always match the tree —
//! `locaware-lint --update-ratchet` rewrites the file after a burn-down.
//! Files absent from the table start at zero, so new code cannot introduce
//! unwraps at all.
//!
//! The format is a deliberately tiny TOML subset (one `[unwrap]` table of
//! `"path" = count` lines) so the dependency-free parser here stays honest.

use std::collections::BTreeMap;

/// Parsed ratchet table: repo-relative path → committed non-test
/// unwrap/expect count.
#[derive(Debug, Default, Clone)]
pub struct Ratchet {
    /// Per-file baselines.
    pub unwrap: BTreeMap<String, usize>,
}

/// A parse failure with its 1-based line.
#[derive(Debug)]
pub struct RatchetError {
    /// 1-based line of the offending entry.
    pub line: usize,
    /// What was wrong.
    pub message: String,
}

impl Ratchet {
    /// Parses the `[unwrap]` table out of `lint-ratchet.toml` text.
    pub fn parse(text: &str) -> Result<Ratchet, RatchetError> {
        let mut ratchet = Ratchet::default();
        let mut section = String::new();
        for (idx, raw) in text.lines().enumerate() {
            let line = idx + 1;
            let trimmed = raw.trim();
            if trimmed.is_empty() || trimmed.starts_with('#') {
                continue;
            }
            if let Some(rest) = trimmed.strip_prefix('[') {
                let Some(name) = rest.strip_suffix(']') else {
                    return Err(RatchetError {
                        line,
                        message: format!("unterminated section header: {trimmed}"),
                    });
                };
                section = name.trim().to_string();
                continue;
            }
            let Some((key, value)) = trimmed.split_once('=') else {
                return Err(RatchetError {
                    line,
                    message: format!("expected `\"path\" = count`: {trimmed}"),
                });
            };
            let key = key.trim().trim_matches('"').to_string();
            let value = value.trim();
            let count: usize = value.parse().map_err(|_| RatchetError {
                line,
                message: format!("count for {key} is not a non-negative integer: {value}"),
            })?;
            if section == "unwrap" {
                if ratchet.unwrap.insert(key.clone(), count).is_some() {
                    return Err(RatchetError {
                        line,
                        message: format!("duplicate ratchet entry for {key}"),
                    });
                }
            } else {
                return Err(RatchetError {
                    line,
                    message: format!("unknown section [{section}] (only [unwrap] exists)"),
                });
            }
        }
        Ok(ratchet)
    }

    /// Renders the canonical file content for `--update-ratchet`.
    pub fn render(counts: &BTreeMap<String, usize>) -> String {
        let mut out = String::from(
            "# D004 unwrap/expect ratchet — maintained by `cargo run -p locaware-lint -- --update-ratchet`.\n\
             #\n\
             # Counts are `.unwrap()`/`.expect(..)` call sites in NON-TEST code per\n\
             # library file, and may only go down: exceeding a baseline fails the lint,\n\
             # and so does a stale (too-high) baseline after a burn-down. Files not\n\
             # listed are held at zero.\n\
             \n[unwrap]\n",
        );
        for (path, count) in counts {
            if *count > 0 {
                out.push_str(&format!("\"{path}\" = {count}\n"));
            }
        }
        out
    }
}
