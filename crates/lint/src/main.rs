//! CLI driver: `cargo run -p locaware-lint --release [-- --github]`.
//!
//! Deny-by-default: any finding exits 1. `--github` additionally prints each
//! finding as a GitHub Actions annotation (`::error file=..,line=..`) so CI
//! failures land on the offending line in the diff view. `--update-ratchet`
//! rewrites `lint-ratchet.toml` with the measured per-file unwrap counts —
//! run it only after a reviewed burn-down (the ratchet is monotone by
//! convention; the tool cannot tell a burn-down from a regression you are
//! about to commit).

use std::path::PathBuf;
use std::process::ExitCode;

use locaware_lint::ratchet::Ratchet;
use locaware_lint::run_workspace;

fn usage() -> ! {
    eprintln!(
        "usage: locaware-lint [--root <path>] [--github] [--update-ratchet]\n\
         \n\
         Walks the workspace's Rust sources and enforces the determinism rules\n\
         D001 (hash-iter), D002 (wall-clock), D003 (ambient-rng), D004 (unwrap\n\
         ratchet, lint-ratchet.toml) and D005 (float-accum). Exits non-zero on\n\
         any finding."
    );
    std::process::exit(2);
}

fn main() -> ExitCode {
    let mut github = false;
    let mut update_ratchet = false;
    let mut root: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--github" => github = true,
            "--update-ratchet" => update_ratchet = true,
            "--root" => match args.next() {
                Some(p) => root = Some(PathBuf::from(p)),
                None => usage(),
            },
            _ => usage(),
        }
    }
    // Default root: the workspace this binary was built from. Compile-time is
    // the right binding — the lint and the tree it checks version together.
    let root = root.unwrap_or_else(|| {
        PathBuf::from(env!("CARGO_MANIFEST_DIR"))
            .parent()
            .and_then(|p| p.parent())
            .map(PathBuf::from)
            .unwrap_or_else(|| PathBuf::from("."))
    });

    let (findings, counts) = match run_workspace(&root) {
        Ok(result) => result,
        Err(e) => {
            eprintln!("locaware-lint: cannot walk {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };

    if update_ratchet {
        let rendered = Ratchet::render(&counts);
        let path = root.join("lint-ratchet.toml");
        if let Err(e) = std::fs::write(&path, rendered) {
            eprintln!("locaware-lint: cannot write {}: {e}", path.display());
            return ExitCode::from(2);
        }
        println!(
            "locaware-lint: wrote {} ({} ratcheted files)",
            path.display(),
            counts.values().filter(|&&c| c > 0).count(),
        );
        // Re-run against the fresh ratchet so the exit code reflects the tree.
        let (findings, _) = match run_workspace(&root) {
            Ok(result) => result,
            Err(e) => {
                eprintln!("locaware-lint: cannot walk {}: {e}", root.display());
                return ExitCode::from(2);
            }
        };
        return report(&findings, github);
    }

    report(&findings, github)
}

fn report(findings: &[locaware_lint::Finding], github: bool) -> ExitCode {
    for finding in findings {
        println!("{finding}");
        if github {
            // GitHub annotation syntax; `::` sequences in messages would be
            // misparsed, so strip newlines and escape-encode what matters.
            let message = finding
                .message
                .replace('\n', " ")
                .replace("::", ": :");
            println!(
                "::error file={},line={},title={}::{}",
                finding.file, finding.line, finding.rule, message
            );
        }
    }
    if findings.is_empty() {
        println!("locaware-lint: clean — the determinism contract holds at the source level");
        ExitCode::SUCCESS
    } else {
        println!("locaware-lint: {} finding(s)", findings.len());
        ExitCode::FAILURE
    }
}
