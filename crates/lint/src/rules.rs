//! The determinism rules (D001–D005) plus annotation hygiene (D000).
//!
//! Every rule is a pure function over one file's [`SourceModel`]; scoping —
//! which crates a rule covers — lives in [`crate::FileScope`]. Findings carry the
//! rule id, 1-based line and a message; the driver sorts, filters against
//! `// lint:allow(<key>): <reason>` annotations and reports.
//!
//! | Rule | Key          | Contract it guards                                          |
//! |------|--------------|-------------------------------------------------------------|
//! | D001 | `hash-iter`  | no iteration over `HashMap`/`HashSet` in deterministic code |
//! | D002 | `wall-clock` | no `Instant::now` / `SystemTime` outside `crates/bench`     |
//! | D003 | `ambient-rng`| all randomness flows from seeded `StreamId` factories       |
//! | D004 | —            | `unwrap()`/`expect()` governed by `lint-ratchet.toml`       |
//! | D005 | `float-accum`| no unordered float accumulation in parallel merge callbacks |

use std::collections::BTreeSet;

use crate::lexer::{SourceModel, Tok, TokKind};
use crate::{Finding, Rule};

/// Hash-collection methods whose results depend on hasher state.
const ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "into_iter",
    "into_keys",
    "into_values",
    "drain",
    "retain",
];

fn ident_at<'a>(tokens: &'a [Tok<'a>], i: usize) -> Option<&'a Tok<'a>> {
    tokens.get(i).filter(|t| t.kind == TokKind::Ident)
}

fn is_hash_type(name: &str) -> bool {
    name == "HashMap" || name == "HashSet"
}

/// Collects every identifier the file binds to a `HashMap`/`HashSet`:
/// `name: HashMap<..>` (fields, params, lets) and
/// `name = HashMap::new()/with_capacity(..)` / `.. .collect::<HashMap<..>>()`.
fn hash_bound_names(tokens: &[Tok<'_>]) -> BTreeSet<String> {
    let mut names = BTreeSet::new();
    let n = tokens.len();
    for i in 0..n {
        // Pattern `name : <type>` — skip `::` paths and struct literals.
        if tokens[i].is_punct(':')
            && i >= 1
            && tokens[i - 1].kind == TokKind::Ident
            && (i < 2 || !tokens[i - 2].is_punct(':'))
            && tokens.get(i + 1).is_none_or(|t| !t.is_punct(':'))
        {
            // Walk the type head: references, `mut`, `dyn`, path segments.
            let mut j = i + 1;
            loop {
                match tokens.get(j) {
                    Some(t) if t.is_punct('&') => j += 1,
                    Some(t) if t.is_ident("mut") || t.is_ident("dyn") => j += 1,
                    Some(t)
                        if t.kind == TokKind::Ident
                            && tokens.get(j + 1).is_some_and(|a| a.is_punct(':'))
                            && tokens.get(j + 2).is_some_and(|a| a.is_punct(':')) =>
                    {
                        j += 3
                    }
                    _ => break,
                }
            }
            if ident_at(tokens, j).is_some_and(|t| is_hash_type(t.text)) {
                names.insert(tokens[i - 1].text.to_string());
            }
        }
        // Pattern `name = HashMap::..(..)` or `name = <expr>.collect::<HashMap..>()`.
        if tokens[i].is_punct('=')
            && i >= 1
            && tokens[i - 1].kind == TokKind::Ident
            // Not `==` (comparison) and not `=>` (match arm).
            && tokens.get(i + 1).is_none_or(|t| !t.is_punct('=') && !t.is_punct('>'))
        {
            let mut j = i + 1;
            // Skip a leading path to the first "interesting" ident.
            while let Some(t) = tokens.get(j) {
                if t.kind == TokKind::Ident
                    && tokens.get(j + 1).is_some_and(|a| a.is_punct(':'))
                    && tokens.get(j + 2).is_some_and(|a| a.is_punct(':'))
                    && !is_hash_type(t.text)
                {
                    j += 3;
                } else {
                    break;
                }
            }
            if ident_at(tokens, j).is_some_and(|t| is_hash_type(t.text)) {
                names.insert(tokens[i - 1].text.to_string());
            } else {
                // Scan the initializer (to `;`) for `collect::<HashMap..>`.
                let mut k = i + 1;
                while let Some(t) = tokens.get(k) {
                    if t.is_punct(';') {
                        break;
                    }
                    if t.is_ident("collect")
                        && tokens.get(k + 1).is_some_and(|a| a.is_punct(':'))
                        && tokens.get(k + 2).is_some_and(|a| a.is_punct(':'))
                        && tokens.get(k + 3).is_some_and(|a| a.is_punct('<'))
                        && ident_at(tokens, k + 4).is_some_and(|a| is_hash_type(a.text))
                    {
                        names.insert(tokens[i - 1].text.to_string());
                        break;
                    }
                    k += 1;
                }
            }
        }
    }
    names
}

/// D001: iteration over hash collections leaks hasher order into results.
pub fn d001_hash_iter(file: &str, model: &SourceModel<'_>) -> Vec<Finding> {
    let tokens = &model.tokens;
    let tracked = hash_bound_names(tokens);
    let mut findings = Vec::new();
    let n = tokens.len();
    for i in 0..n {
        if tokens[i].in_test {
            continue;
        }
        // `recv.iter()` and friends, where `recv` is hash-bound.
        if tokens[i].is_punct('.')
            && ident_at(tokens, i + 1).is_some_and(|t| ITER_METHODS.contains(&t.text))
            && tokens.get(i + 2).is_some_and(|t| t.is_punct('('))
        {
            if let Some(recv) = ident_at(tokens, i.wrapping_sub(1)) {
                if tracked.contains(recv.text) {
                    let method = tokens[i + 1].text;
                    findings.push(Finding::new(
                        Rule::D001,
                        file,
                        tokens[i + 1].line,
                        format!(
                            "`{recv}.{method}()` iterates a hash collection in arbitrary \
                             order; use a sorted/dense structure or justify with \
                             `// lint:allow(hash-iter): <why order cannot escape>`",
                            recv = recv.text,
                        ),
                    ));
                }
            }
        }
        // `sink.extend(map)` / `Vec::from_iter(map)` move the map through its
        // arbitrary-order iterator.
        if (tokens[i].is_ident("extend") || tokens[i].is_ident("from_iter"))
            && tokens.get(i + 1).is_some_and(|t| t.is_punct('('))
        {
            let mut j = i + 2;
            while tokens.get(j).is_some_and(|t| t.is_punct('&') || t.is_ident("mut")) {
                j += 1;
            }
            if ident_at(tokens, j).is_some_and(|t| tracked.contains(t.text))
                && tokens.get(j + 1).is_some_and(|t| t.is_punct(')'))
            {
                findings.push(Finding::new(
                    Rule::D001,
                    file,
                    tokens[i].line,
                    format!(
                        "`{}({})` consumes a hash collection through its arbitrary-order \
                         iterator; collect and sort first or justify with \
                         `// lint:allow(hash-iter): <why>`",
                        tokens[i].text, tokens[j].text,
                    ),
                ));
            }
        }
        // `for pat in <expr> {` where <expr> is (a reference to) a hash-bound
        // name. Method-call expressions are left to the receiver rule above.
        if tokens[i].is_ident("for") && tokens.get(i + 1).is_some_and(|t| !t.is_punct('<')) {
            let mut j = i + 1;
            let mut depth = 0i32;
            let mut in_idx = None;
            while let Some(t) = tokens.get(j) {
                match t.kind {
                    TokKind::Punct('(') | TokKind::Punct('[') => depth += 1,
                    TokKind::Punct(')') | TokKind::Punct(']') => depth -= 1,
                    TokKind::Punct('{') if depth == 0 => break,
                    TokKind::Punct(';') => break,
                    TokKind::Ident if depth == 0 && t.text == "in" => {
                        in_idx = Some(j);
                    }
                    _ => {}
                }
                j += 1;
            }
            if let Some(start) = in_idx {
                let expr = &tokens[start + 1..j.min(n)];
                let has_call = expr.iter().any(|t| t.is_punct('('));
                let last_ident = expr.iter().rev().find(|t| t.kind == TokKind::Ident);
                if !has_call {
                    if let Some(name) = last_ident {
                        if tracked.contains(name.text) {
                            findings.push(Finding::new(
                                Rule::D001,
                                file,
                                tokens[i].line,
                                format!(
                                    "for-loop over hash collection `{}` visits elements in \
                                     arbitrary order; sort first or justify with \
                                     `// lint:allow(hash-iter): <why>`",
                                    name.text,
                                ),
                            ));
                        }
                    }
                }
            }
        }
    }
    findings
}

/// D002: wall-clock reads make runs time-dependent.
pub fn d002_wall_clock(file: &str, model: &SourceModel<'_>) -> Vec<Finding> {
    let tokens = &model.tokens;
    let mut findings = Vec::new();
    for (i, t) in tokens.iter().enumerate() {
        if t.in_test {
            continue;
        }
        if t.is_ident("Instant")
            && tokens.get(i + 1).is_some_and(|a| a.is_punct(':'))
            && tokens.get(i + 2).is_some_and(|a| a.is_punct(':'))
            && tokens.get(i + 3).is_some_and(|a| a.is_ident("now"))
        {
            findings.push(Finding::new(
                Rule::D002,
                file,
                t.line,
                "`Instant::now()` reads the wall clock; simulated time must come from \
                 the event engine (`SimTime`) — timing belongs in crates/bench"
                    .to_string(),
            ));
        }
        if t.is_ident("SystemTime") {
            findings.push(Finding::new(
                Rule::D002,
                file,
                t.line,
                "`SystemTime` reads the wall clock; simulated time must come from the \
                 event engine (`SimTime`) — timing belongs in crates/bench"
                    .to_string(),
            ));
        }
    }
    findings
}

/// D003: ambient RNG bypasses the seeded `StreamId` factory discipline.
pub fn d003_ambient_rng(file: &str, model: &SourceModel<'_>) -> Vec<Finding> {
    let tokens = &model.tokens;
    let mut findings = Vec::new();
    for (i, t) in tokens.iter().enumerate() {
        // Deliberately NOT test-exempt: a nondeterministic test is a broken
        // regression net for a determinism contract.
        let flagged = if t.is_ident("thread_rng") || t.is_ident("from_entropy") || t.is_ident("from_os_rng") {
            Some(t.text)
        } else if t.is_ident("random")
            && i >= 2
            && tokens[i - 1].is_punct(':')
            && tokens[i - 2].is_punct(':')
            && ident_at(tokens, i.wrapping_sub(3)).is_some_and(|a| a.text == "rand")
        {
            Some("rand::random")
        } else {
            None
        };
        if let Some(name) = flagged {
            findings.push(Finding::new(
                Rule::D003,
                file,
                t.line,
                format!(
                    "`{name}` draws from ambient OS entropy; every stream must derive \
                     from the master seed via a `StreamId` factory (`RngFactory`)",
                ),
            ));
        }
    }
    findings
}

/// The number of `.unwrap()` / `.expect(` call sites in non-test code, with
/// the line of each site (for D004's over-ratchet report).
pub fn d004_unwrap_sites(model: &SourceModel<'_>) -> Vec<usize> {
    let tokens = &model.tokens;
    let mut lines = Vec::new();
    for i in 0..tokens.len() {
        if tokens[i].in_test {
            continue;
        }
        if tokens[i].is_punct('.')
            && ident_at(tokens, i + 1)
                .is_some_and(|t| t.text == "unwrap" || t.text == "expect")
            && tokens.get(i + 2).is_some_and(|t| t.is_punct('('))
        {
            lines.push(tokens[i + 1].line);
        }
    }
    lines
}

/// Identifiers the file binds to `f64`/`f32` (annotations or float literals).
fn float_bound_names(tokens: &[Tok<'_>]) -> BTreeSet<String> {
    let mut names = BTreeSet::new();
    for i in 0..tokens.len() {
        if tokens[i].is_punct(':')
            && i >= 1
            && tokens[i - 1].kind == TokKind::Ident
            && (i < 2 || !tokens[i - 2].is_punct(':'))
            && ident_at(tokens, i + 1).is_some_and(|t| t.text == "f64" || t.text == "f32")
        {
            names.insert(tokens[i - 1].text.to_string());
        }
        if tokens[i].is_punct('=')
            && i >= 1
            && tokens[i - 1].kind == TokKind::Ident
            && tokens.get(i + 1).is_some_and(|t| t.kind == TokKind::Float)
        {
            names.insert(tokens[i - 1].text.to_string());
        }
    }
    names
}

/// D005: float accumulation inside parallel merge callbacks — float addition
/// is not associative, so merge order must be argued, not assumed.
pub fn d005_float_accum(file: &str, model: &SourceModel<'_>) -> Vec<Finding> {
    let tokens = &model.tokens;
    let floats = float_bound_names(tokens);
    let mut findings = Vec::new();
    let n = tokens.len();
    let mut i = 0usize;
    while i < n {
        // A `map_indexed(...)` call: the span between its parentheses is a
        // parallel callback region (the workspace's fan-out primitive).
        if tokens[i].is_ident("map_indexed")
            && tokens.get(i + 1).is_some_and(|t| t.is_punct('('))
            && !tokens[i].in_test
        {
            let mut j = i + 2;
            let mut depth = 1i32;
            let span_start = j;
            while j < n && depth > 0 {
                if tokens[j].is_punct('(') {
                    depth += 1;
                } else if tokens[j].is_punct(')') {
                    depth -= 1;
                }
                j += 1;
            }
            let span = &tokens[span_start..j.saturating_sub(1).min(n)];
            findings.extend(scan_parallel_span(file, span, &floats));
            i = j;
            continue;
        }
        i += 1;
    }
    findings
}

/// Scans one parallel-callback span for order-sensitive float accumulation.
fn scan_parallel_span(
    file: &str,
    span: &[Tok<'_>],
    floats: &BTreeSet<String>,
) -> Vec<Finding> {
    let mut findings = Vec::new();
    let n = span.len();
    for i in 0..n {
        // Compound assignment `x += ..` / `-=` / `*=` / `/=` on a float.
        if matches!(
            span[i].kind,
            TokKind::Punct('+') | TokKind::Punct('-') | TokKind::Punct('*') | TokKind::Punct('/')
        ) && span.get(i + 1).is_some_and(|t| t.is_punct('='))
        {
            let lhs_float =
                ident_at(span, i.wrapping_sub(1)).is_some_and(|t| floats.contains(t.text));
            // Float evidence on the right-hand side (to the statement end).
            let rhs_float = span[i + 2..]
                .iter()
                .take_while(|t| !t.is_punct(';'))
                .any(|t| {
                    t.kind == TokKind::Float
                        || t.is_ident("f64")
                        || t.is_ident("f32")
                        || (t.kind == TokKind::Ident && floats.contains(t.text))
                });
            if lhs_float || rhs_float {
                findings.push(Finding::new(
                    Rule::D005,
                    file,
                    span[i].line,
                    "float accumulation inside a parallel merge callback: float \
                     addition is not associative, so the merge order must be argued \
                     with `// lint:allow(float-accum): <ordering argument>`"
                        .to_string(),
                ));
            }
        }
        // `.sum::<f64>()` / `.fold(0.0, ..)` inside the span.
        if span[i].is_punct('.')
            && ident_at(span, i + 1).is_some_and(|t| t.text == "sum" || t.text == "product")
            && span.get(i + 2).is_some_and(|t| t.is_punct(':'))
            && span.get(i + 4).is_some_and(|t| t.is_punct('<'))
            && ident_at(span, i + 5).is_some_and(|t| t.text == "f64" || t.text == "f32")
        {
            findings.push(Finding::new(
                Rule::D005,
                file,
                span[i + 1].line,
                "float reduction inside a parallel merge callback: justify the \
                 ordering with `// lint:allow(float-accum): <ordering argument>`"
                    .to_string(),
            ));
        }
        if span[i].is_punct('.')
            && ident_at(span, i + 1).is_some_and(|t| t.text == "fold")
            && span.get(i + 2).is_some_and(|t| t.is_punct('('))
            && span.get(i + 3).is_some_and(|t| {
                t.kind == TokKind::Float
                    || (t.kind == TokKind::Ident && floats.contains(t.text))
            })
        {
            findings.push(Finding::new(
                Rule::D005,
                file,
                span[i + 1].line,
                "float fold inside a parallel merge callback: justify the ordering \
                 with `// lint:allow(float-accum): <ordering argument>`"
                    .to_string(),
            ));
        }
    }
    findings
}
