//! `locaware-lint`: the workspace determinism lint.
//!
//! Every result this reproduction reports rests on one contract: same seed ⇒
//! byte-identical [`SimulationReport`], across shard counts and build-thread
//! counts. The golden fingerprints and the shard matrix enforce that contract
//! *after the fact*; this crate enforces it at the **source level**, failing
//! CI at the line that breaks a determinism rule instead of at the
//! fingerprint that notices the drift a layer later.
//!
//! The pass is a deliberately lightweight lexer, not a compiler plugin: it
//! distinguishes code from strings/comments, brace-matches `#[cfg(test)]` /
//! `mod tests` scopes, and resolves receiver/method patterns — enough to
//! machine-check the rules the codebase already follows by convention, with
//! zero dependencies so it builds and runs in seconds before anything else.
//!
//! Rules (see [`rules`] for the table): D001 `hash-iter`, D002 `wall-clock`,
//! D003 `ambient-rng`, D004 unwrap ratchet, D005 `float-accum`, plus D000
//! annotation hygiene. The one escape hatch is a justified annotation:
//!
//! ```text
//! // lint:allow(hash-iter): results are sorted before any order-dependent use
//! ```
//!
//! on the finding's line or the line above. An annotation without a reason is
//! itself a finding, and an annotation nothing fires on is reported as
//! unused, so stale allows cannot accumulate.
//!
//! [`SimulationReport`]: https://docs.rs/locaware

pub mod lexer;
pub mod ratchet;
pub mod rules;

use std::collections::BTreeMap;
use std::fmt;
use std::path::{Path, PathBuf};

use lexer::{Cleaned, SourceModel};
use ratchet::Ratchet;

/// The lint rules.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rule {
    /// Annotation hygiene: malformed, reason-less, unknown-key or unused
    /// `lint:allow`.
    D000,
    /// Iteration over `HashMap`/`HashSet` in deterministic crates.
    D001,
    /// Wall-clock reads outside `crates/bench`.
    D002,
    /// Ambient (OS-entropy) randomness anywhere.
    D003,
    /// Per-file unwrap/expect ratchet.
    D004,
    /// Float accumulation in parallel merge callbacks.
    D005,
}

impl Rule {
    /// The `lint:allow(<key>)` key for annotatable rules.
    pub fn allow_key(self) -> Option<&'static str> {
        match self {
            Rule::D001 => Some("hash-iter"),
            Rule::D002 => Some("wall-clock"),
            Rule::D003 => Some("ambient-rng"),
            Rule::D005 => Some("float-accum"),
            Rule::D000 | Rule::D004 => None,
        }
    }

    /// Every valid annotation key.
    pub const ALLOW_KEYS: [&'static str; 4] =
        ["hash-iter", "wall-clock", "ambient-rng", "float-accum"];
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            Rule::D000 => "D000",
            Rule::D001 => "D001",
            Rule::D002 => "D002",
            Rule::D003 => "D003",
            Rule::D004 => "D004",
            Rule::D005 => "D005",
        };
        f.write_str(name)
    }
}

/// One lint finding.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Finding {
    /// Repo-relative path (forward slashes).
    pub file: String,
    /// 1-based line.
    pub line: usize,
    /// Which rule fired.
    pub rule: Rule,
    /// Human-readable explanation with the remedy.
    pub message: String,
}

impl Finding {
    pub(crate) fn new(rule: Rule, file: &str, line: usize, message: String) -> Finding {
        Finding { file: file.to_string(), line, rule, message }
    }
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: {} {}", self.file, self.line, self.rule, self.message)
    }
}

/// The crates whose library sources carry the bit-identical contract.
const DETERMINISTIC_CRATES: [&str; 7] =
    ["sim", "net", "overlay", "bloom", "workload", "core", "metrics"];

/// Which rules apply to a repo-relative path.
#[derive(Debug, Clone, Copy, Default)]
pub struct FileScope {
    /// D001 + D005 + the D004 count: deterministic library source.
    pub deterministic: bool,
    /// D002: everything first-party except `crates/bench` (timing is its job).
    pub wall_clock: bool,
    /// D003: all first-party code, bench included.
    pub ambient_rng: bool,
}

impl FileScope {
    /// Classifies a repo-relative path (forward slashes).
    ///
    /// `crates/compat/` (vendored stand-ins for external crates) and
    /// `crates/lint/` (this tool) are outside every rule; `target/` never
    /// reaches this function.
    pub fn of(path: &str) -> FileScope {
        if path.starts_with("crates/compat/") || path.starts_with("crates/lint/") {
            return FileScope::default();
        }
        let first_party = path.starts_with("crates/")
            || path.starts_with("src/")
            || path.starts_with("tests/")
            || path.starts_with("examples/");
        if !first_party {
            return FileScope::default();
        }
        let deterministic = DETERMINISTIC_CRATES
            .iter()
            .any(|c| path.starts_with(&format!("crates/{c}/src/")));
        let is_bench = path.starts_with("crates/bench/");
        FileScope {
            deterministic,
            wall_clock: !is_bench,
            ambient_rng: true,
        }
    }
}

/// Lints one file's source text under its path-derived scope. Returns the
/// findings (annotation-filtered, annotation hygiene included) and the
/// 1-based lines of the file's non-test unwrap/expect sites when the ratchet
/// covers it.
pub fn analyze_source(path: &str, source: &str) -> (Vec<Finding>, Option<Vec<usize>>) {
    let scope = FileScope::of(path);
    if !scope.deterministic && !scope.wall_clock && !scope.ambient_rng {
        // Out-of-scope file (vendored compat shims, this tool): no rules, and
        // no annotation policing either — its comments are not our business.
        return (Vec::new(), None);
    }
    let cleaned = Cleaned::of(source);
    let model = SourceModel::new(&cleaned);

    let mut raw: Vec<Finding> = Vec::new();
    if scope.deterministic {
        raw.extend(rules::d001_hash_iter(path, &model));
        raw.extend(rules::d005_float_accum(path, &model));
    }
    if scope.wall_clock {
        raw.extend(rules::d002_wall_clock(path, &model));
    }
    if scope.ambient_rng {
        raw.extend(rules::d003_ambient_rng(path, &model));
    }

    let mut findings: Vec<Finding> = Vec::new();
    // Annotation hygiene first: malformed comments and bad keys.
    for (line, message) in &model.bad_allows {
        findings.push(Finding::new(Rule::D000, path, *line, message.clone()));
    }
    for allow in &model.allows {
        if !Rule::ALLOW_KEYS.contains(&allow.key.as_str()) {
            findings.push(Finding::new(
                Rule::D000,
                path,
                allow.line,
                format!(
                    "unknown lint:allow key `{}` (valid: {})",
                    allow.key,
                    Rule::ALLOW_KEYS.join(", "),
                ),
            ));
        } else if allow.reason.is_empty() {
            findings.push(Finding::new(
                Rule::D000,
                path,
                allow.line,
                format!(
                    "lint:allow({}) carries no reason — every allow must argue why \
                     the site is order-insensitive / deterministic",
                    allow.key,
                ),
            ));
        }
    }

    // Filter rule findings through same-line / line-above allows, tracking use.
    let mut used = vec![false; model.allows.len()];
    for finding in raw {
        let Some(key) = finding.rule.allow_key() else {
            findings.push(finding);
            continue;
        };
        let mut allowed = false;
        for (ai, allow) in model.allows.iter().enumerate() {
            if allow.key == key
                && !allow.reason.is_empty()
                && (allow.line == finding.line || allow.line + 1 == finding.line)
            {
                used[ai] = true;
                allowed = true;
            }
        }
        if !allowed {
            findings.push(finding);
        }
    }
    for (ai, allow) in model.allows.iter().enumerate() {
        if !used[ai] && Rule::ALLOW_KEYS.contains(&allow.key.as_str()) && !allow.reason.is_empty()
        {
            findings.push(Finding::new(
                Rule::D000,
                path,
                allow.line,
                format!(
                    "unused lint:allow({}) — nothing fires here any more; delete the \
                     annotation so allows stay meaningful",
                    allow.key,
                ),
            ));
        }
    }

    let unwrap_sites = if scope.deterministic {
        Some(rules::d004_unwrap_sites(&model))
    } else {
        None
    };
    (findings, unwrap_sites)
}

/// Compares measured per-file unwrap counts against the committed ratchet.
pub fn check_ratchet(
    counts: &BTreeMap<String, usize>,
    sites: &BTreeMap<String, Vec<usize>>,
    ratchet: &Ratchet,
) -> Vec<Finding> {
    let mut findings = Vec::new();
    for (path, &count) in counts {
        let baseline = ratchet.unwrap.get(path).copied().unwrap_or(0);
        if count > baseline {
            // Report at the first site past the baseline: with a monotone
            // ratchet that is the newest addition.
            let line = sites
                .get(path)
                .and_then(|lines| lines.get(baseline).or(lines.last()))
                .copied()
                .unwrap_or(1);
            findings.push(Finding::new(
                Rule::D004,
                path,
                line,
                format!(
                    "{count} unwrap()/expect() sites exceed the committed ratchet of \
                     {baseline} — return a typed error (e.g. ConfigError) or document \
                     the invariant and run `--update-ratchet` only with the burn-down \
                     reviewed",
                ),
            ));
        } else if count < baseline {
            findings.push(stale_ratchet_finding(path, count, baseline));
        }
    }
    for path in ratchet.unwrap.keys() {
        if !counts.contains_key(path) {
            findings.push(Finding::new(
                Rule::D004,
                path,
                1,
                "ratchet entry for a file that no longer exists — run `--update-ratchet`"
                    .to_string(),
            ));
        }
    }
    findings
}

fn stale_ratchet_finding(path: &str, count: usize, baseline: usize) -> Finding {
    Finding::new(
        Rule::D004,
        path,
        1,
        format!(
            "stale ratchet: file now has {count} unwrap()/expect() sites but the \
             committed baseline is {baseline} — counts may only go down; run \
             `cargo run -p locaware-lint -- --update-ratchet` to bank the burn-down",
        ),
    )
}

/// Recursively collects the workspace's first-party `.rs` files.
pub fn workspace_files(root: &Path) -> std::io::Result<Vec<(String, PathBuf)>> {
    let mut files = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        for entry in std::fs::read_dir(&dir)? {
            let entry = entry?;
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if path.is_dir() {
                if name == "target" || name == ".git" || name == "proptest-regressions" {
                    continue;
                }
                stack.push(path);
            } else if name.ends_with(".rs") {
                let rel = path
                    .strip_prefix(root)
                    .unwrap_or(&path)
                    .to_string_lossy()
                    .replace('\\', "/");
                files.push((rel, path));
            }
        }
    }
    files.sort();
    Ok(files)
}

/// Runs the whole pass over a workspace root. Returns all findings sorted by
/// (file, line, rule) and the measured per-file unwrap counts (for
/// `--update-ratchet`).
pub fn run_workspace(
    root: &Path,
) -> std::io::Result<(Vec<Finding>, BTreeMap<String, usize>)> {
    let mut findings = Vec::new();
    let mut counts: BTreeMap<String, usize> = BTreeMap::new();
    let mut sites: BTreeMap<String, Vec<usize>> = BTreeMap::new();
    for (rel, path) in workspace_files(root)? {
        let source = std::fs::read_to_string(&path)?;
        let (file_findings, unwrap_sites) = analyze_source(&rel, &source);
        findings.extend(file_findings);
        if let Some(lines) = unwrap_sites {
            counts.insert(rel.clone(), lines.len());
            sites.insert(rel, lines);
        }
    }
    let ratchet_path = root.join("lint-ratchet.toml");
    match std::fs::read_to_string(&ratchet_path) {
        Ok(text) => match Ratchet::parse(&text) {
            Ok(ratchet) => findings.extend(check_ratchet(&counts, &sites, &ratchet)),
            Err(e) => findings.push(Finding::new(
                Rule::D004,
                "lint-ratchet.toml",
                e.line,
                e.message,
            )),
        },
        Err(_) => findings.push(Finding::new(
            Rule::D004,
            "lint-ratchet.toml",
            1,
            "missing lint-ratchet.toml — the unwrap ratchet is part of the \
             determinism contract; run `cargo run -p locaware-lint -- --update-ratchet`"
                .to_string(),
        )),
    }
    findings.sort();
    findings.dedup();
    Ok((findings, counts))
}
