//! A lightweight Rust lexer — just enough syntax awareness for the
//! determinism rules.
//!
//! The lexer does three jobs the rules depend on:
//!
//! 1. **Cleaning**: string/char literals and comments are blanked out (line
//!    structure preserved) so a `"thread_rng"` inside a log message or a
//!    `HashMap` in a doc comment can never fire a rule.
//! 2. **Tokenizing**: the cleaned text becomes a flat stream of identifier /
//!    punctuation / number tokens with 1-based line numbers, which is what
//!    the receiver-pattern matching in [`crate::rules`] walks.
//! 3. **Scope tracking**: `#[cfg(test)]` items, `mod tests { .. }` blocks and
//!    `#[test]` functions are brace-matched so every token knows whether it
//!    is test code (test code is exempt from most rules).
//!
//! Line comments are additionally scanned for `// lint:allow(<rule>): <why>`
//! annotations, the one escape hatch the rules honour.

use std::collections::BTreeMap;

/// Token kinds the rules distinguish.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword.
    Ident,
    /// A single punctuation character (`::` arrives as two `:` tokens).
    Punct(char),
    /// Integer literal.
    Int,
    /// Floating-point literal (contains `.` or a decimal exponent).
    Float,
}

/// One lexed token.
#[derive(Debug, Clone)]
pub struct Tok<'a> {
    /// Kind of token.
    pub kind: TokKind,
    /// The token text (empty for punctuation; use the kind).
    pub text: &'a str,
    /// 1-based source line.
    pub line: usize,
    /// True when the token sits inside test-only code.
    pub in_test: bool,
}

impl Tok<'_> {
    /// True for an identifier with exactly this text.
    pub fn is_ident(&self, text: &str) -> bool {
        self.kind == TokKind::Ident && self.text == text
    }

    /// True for this punctuation character.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct(c)
    }
}

/// A parsed `// lint:allow(<key>): <reason>` annotation.
#[derive(Debug, Clone)]
pub struct Allow {
    /// The rule key inside the parentheses (e.g. `hash-iter`).
    pub key: String,
    /// The justification after the colon (may be empty — rules reject that).
    pub reason: String,
    /// 1-based line the annotation sits on.
    pub line: usize,
}

/// The cleaning stage's output: blanked source text plus captured line
/// comments. Owns the storage every [`SourceModel`] token borrows from.
#[derive(Debug)]
pub struct Cleaned {
    text: String,
    comments: BTreeMap<usize, Vec<String>>,
}

impl Cleaned {
    /// Blanks literals/comments out of `source`, capturing line comments.
    pub fn of(source: &str) -> Cleaned {
        let (text, comments) = clean(source);
        Cleaned { text, comments }
    }

    /// The cleaned text (test hook).
    pub fn text(&self) -> &str {
        &self.text
    }
}

/// The lexed form of one source file; borrows the [`Cleaned`] buffer.
#[derive(Debug)]
pub struct SourceModel<'a> {
    /// Token stream over the cleaned source.
    pub tokens: Vec<Tok<'a>>,
    /// `lint:allow` annotations by line.
    pub allows: Vec<Allow>,
    /// Malformed annotation diagnostics: (line, message).
    pub bad_allows: Vec<(usize, String)>,
}

/// Blanks comments and literals, capturing line comments for annotation
/// parsing. Returns (cleaned text, line-comment map).
fn clean(source: &str) -> (String, BTreeMap<usize, Vec<String>>) {
    #[derive(PartialEq)]
    enum State {
        Normal,
        LineComment,
        Block(u32),
        Str,
        RawStr(u32),
        Char,
    }
    let mut out = String::with_capacity(source.len());
    let mut comments: BTreeMap<usize, Vec<String>> = BTreeMap::new();
    let mut comment_buf = String::new();
    let mut line = 1usize;
    let mut state = State::Normal;
    let chars: Vec<char> = source.chars().collect();
    let mut i = 0usize;
    let mut prev_ident_char = false;
    while i < chars.len() {
        let c = chars[i];
        if c == '\n' {
            if state == State::LineComment {
                comments.entry(line).or_default().push(comment_buf.clone());
                comment_buf.clear();
                state = State::Normal;
            }
            out.push('\n');
            line += 1;
            i += 1;
            if state == State::Normal {
                prev_ident_char = false;
            }
            continue;
        }
        match state {
            State::Normal => {
                if c == '/' && chars.get(i + 1) == Some(&'/') {
                    state = State::LineComment;
                    out.push(' ');
                    out.push(' ');
                    i += 2;
                    continue;
                }
                if c == '/' && chars.get(i + 1) == Some(&'*') {
                    state = State::Block(1);
                    out.push(' ');
                    out.push(' ');
                    i += 2;
                    continue;
                }
                if c == '"' {
                    state = State::Str;
                    out.push(' ');
                    i += 1;
                    continue;
                }
                // Raw strings r"..." / r#"..."# / br"..." — only when the
                // leading r/b is not the tail of a longer identifier.
                if (c == 'r' || c == 'b') && !prev_ident_char {
                    let mut j = i;
                    if c == 'b' && chars.get(j + 1) == Some(&'r') {
                        j += 1;
                    }
                    if chars[j] == 'r' || c == 'b' {
                        let mut k = j + 1;
                        let mut hashes = 0u32;
                        while chars.get(k) == Some(&'#') {
                            hashes += 1;
                            k += 1;
                        }
                        if chars.get(k) == Some(&'"') && (chars[j] == 'r' || hashes == 0) {
                            // b"..." (k==j+1, hashes==0) or r/br raw string.
                            if chars[j] == 'r' {
                                state = State::RawStr(hashes);
                            } else {
                                state = State::Str;
                            }
                            for _ in i..=k {
                                out.push(' ');
                            }
                            i = k + 1;
                            prev_ident_char = false;
                            continue;
                        }
                    }
                }
                if c == '\'' {
                    // Lifetime ('a) vs char literal ('x', '\n').
                    let next = chars.get(i + 1).copied();
                    let after = chars.get(i + 2).copied();
                    let is_lifetime = matches!(next, Some(n) if n.is_alphabetic() || n == '_')
                        && after != Some('\'');
                    if is_lifetime {
                        // Blank the quote and the lifetime name.
                        out.push(' ');
                        i += 1;
                        while i < chars.len()
                            && (chars[i].is_alphanumeric() || chars[i] == '_')
                        {
                            out.push(' ');
                            i += 1;
                        }
                        prev_ident_char = false;
                        continue;
                    }
                    state = State::Char;
                    out.push(' ');
                    i += 1;
                    continue;
                }
                prev_ident_char = c.is_alphanumeric() || c == '_';
                out.push(c);
                i += 1;
            }
            State::LineComment => {
                comment_buf.push(c);
                out.push(' ');
                i += 1;
            }
            State::Block(depth) => {
                if c == '*' && chars.get(i + 1) == Some(&'/') {
                    state = if depth == 1 {
                        State::Normal
                    } else {
                        State::Block(depth - 1)
                    };
                    out.push(' ');
                    out.push(' ');
                    i += 2;
                } else if c == '/' && chars.get(i + 1) == Some(&'*') {
                    state = State::Block(depth + 1);
                    out.push(' ');
                    out.push(' ');
                    i += 2;
                } else {
                    out.push(' ');
                    i += 1;
                }
            }
            State::Str => {
                if c == '\\' {
                    out.push(' ');
                    if i + 1 < chars.len() && chars[i + 1] != '\n' {
                        out.push(' ');
                        i += 2;
                    } else {
                        i += 1;
                    }
                } else if c == '"' {
                    state = State::Normal;
                    out.push(' ');
                    i += 1;
                } else {
                    out.push(' ');
                    i += 1;
                }
            }
            State::RawStr(hashes) => {
                if c == '"' {
                    let mut k = i + 1;
                    let mut seen = 0u32;
                    while seen < hashes && chars.get(k) == Some(&'#') {
                        seen += 1;
                        k += 1;
                    }
                    if seen == hashes {
                        state = State::Normal;
                        for _ in i..k {
                            out.push(' ');
                        }
                        i = k;
                        continue;
                    }
                }
                out.push(' ');
                i += 1;
            }
            State::Char => {
                if c == '\\' {
                    out.push(' ');
                    if i + 1 < chars.len() && chars[i + 1] != '\n' {
                        out.push(' ');
                        i += 2;
                    } else {
                        i += 1;
                    }
                } else if c == '\'' {
                    state = State::Normal;
                    out.push(' ');
                    i += 1;
                } else {
                    out.push(' ');
                    i += 1;
                }
            }
        }
    }
    if state == State::LineComment && !comment_buf.is_empty() {
        comments.entry(line).or_default().push(comment_buf);
    }
    (out, comments)
}

/// Tokenizes cleaned text (no strings/comments left) into idents, numbers
/// and single-character punctuation.
fn tokenize(cleaned: &str) -> Vec<(TokKind, std::ops::Range<usize>, usize)> {
    let bytes = cleaned.as_bytes();
    let mut toks = Vec::new();
    let mut line = 1usize;
    let mut i = 0usize;
    while i < bytes.len() {
        let c = bytes[i] as char;
        if c == '\n' {
            line += 1;
            i += 1;
            continue;
        }
        if c.is_whitespace() {
            i += 1;
            continue;
        }
        if c.is_ascii_alphabetic() || c == '_' || !c.is_ascii() {
            let start = i;
            while i < bytes.len() {
                let ch = bytes[i] as char;
                if ch.is_ascii_alphanumeric() || ch == '_' || !ch.is_ascii() {
                    i += 1;
                } else {
                    break;
                }
            }
            toks.push((TokKind::Ident, start..i, line));
            continue;
        }
        if c.is_ascii_digit() {
            let start = i;
            let mut is_float = false;
            let hex = bytes.get(i + 1) == Some(&b'x') || bytes.get(i + 1) == Some(&b'X');
            i += 1;
            while i < bytes.len() {
                let ch = bytes[i] as char;
                if ch.is_ascii_alphanumeric() || ch == '_' {
                    if !hex && (ch == 'e' || ch == 'E') {
                        // Exponent only if followed by digit or sign+digit.
                        let sign = matches!(bytes.get(i + 1), Some(b'+') | Some(b'-'));
                        let digit_at = if sign { i + 2 } else { i + 1 };
                        if bytes
                            .get(digit_at)
                            .is_some_and(|b| (*b as char).is_ascii_digit())
                        {
                            is_float = true;
                            i = digit_at + 1;
                            continue;
                        }
                    }
                    i += 1;
                } else if ch == '.'
                    && !is_float
                    && bytes
                        .get(i + 1)
                        .is_none_or(|b| (*b as char).is_ascii_digit() || (*b as char).is_whitespace() || matches!(*b as char, ')' | ']' | '}' | ',' | ';'))
                    && bytes.get(i + 1) != Some(&b'.')
                {
                    // `1.5` or trailing `1.` — but not the range `0..n`.
                    is_float = true;
                    i += 1;
                } else {
                    break;
                }
            }
            let kind = if is_float { TokKind::Float } else { TokKind::Int };
            toks.push((kind, start..i, line));
            continue;
        }
        toks.push((TokKind::Punct(c), i..i + 1, line));
        i += 1;
    }
    toks
}

/// Marks every token with whether it lives in test-only code.
fn mark_test_scopes(tokens: &mut [Tok<'_>]) {
    // Stack of brace regions: (depth when opened, is_test).
    let mut depth = 0usize;
    let mut test_until_depth: Option<usize> = None;
    // Pending: a `#[cfg(test)]` / `#[test]` attribute was seen and we are
    // waiting for the item's opening brace (cleared on `;` — braceless item).
    let mut pending_test = false;
    let mut i = 0usize;
    let n = tokens.len();
    while i < n {
        // Attribute recognition: #[ ... ] possibly containing cfg(test) or test.
        if tokens[i].is_punct('#') && i + 1 < n && tokens[i + 1].is_punct('[') {
            // Scan to the matching ].
            let mut j = i + 2;
            let mut bracket = 1usize;
            let mut saw_test = false;
            let mut saw_cfg = false;
            while j < n && bracket > 0 {
                if tokens[j].is_punct('[') {
                    bracket += 1;
                } else if tokens[j].is_punct(']') {
                    bracket -= 1;
                } else if tokens[j].is_ident("cfg") {
                    saw_cfg = true;
                } else if tokens[j].is_ident("test") {
                    saw_test = true;
                }
                j += 1;
            }
            // `#[test]` (bare) or `#[cfg(test)]` / `#[cfg(all(test, ..))]`.
            let is_test_attr = saw_test && (saw_cfg || j == i + 4);
            if is_test_attr && test_until_depth.is_none() {
                pending_test = true;
            }
            // Attribute tokens inherit the current scope.
            for t in tokens.iter_mut().take(j).skip(i) {
                t.in_test = test_until_depth.is_some();
            }
            i = j;
            continue;
        }
        // `mod tests {` — the conventional unit-test module.
        if tokens[i].is_ident("mod")
            && i + 2 < n
            && tokens[i + 1].kind == TokKind::Ident
            && (tokens[i + 1].text == "tests" || tokens[i + 1].text == "test")
            && tokens[i + 2].is_punct('{')
            && test_until_depth.is_none()
        {
            pending_test = true;
        }
        let in_test = test_until_depth.is_some();
        tokens[i].in_test = in_test || (pending_test && tokens[i].is_punct('{'));
        if tokens[i].is_punct('{') {
            depth += 1;
            if pending_test && test_until_depth.is_none() {
                test_until_depth = Some(depth);
                pending_test = false;
            }
        } else if tokens[i].is_punct('}') {
            if let Some(d) = test_until_depth {
                if depth == d {
                    test_until_depth = None;
                    tokens[i].in_test = true;
                }
            }
            depth = depth.saturating_sub(1);
        } else if tokens[i].is_punct(';') && pending_test && test_until_depth.is_none() {
            // #[cfg(test)] use ...; — attribute governed a braceless item.
            pending_test = false;
        }
        i += 1;
    }
}

/// Parses `lint:allow(<key>): <reason>` out of the line comments.
fn parse_allows(
    comments: &BTreeMap<usize, Vec<String>>,
) -> (Vec<Allow>, Vec<(usize, String)>) {
    let mut allows = Vec::new();
    let mut bad = Vec::new();
    for (&line, texts) in comments {
        for text in texts {
            let Some(pos) = text.find("lint:allow") else {
                continue;
            };
            let rest = &text[pos + "lint:allow".len()..];
            let rest = rest.trim_start();
            let Some(rest) = rest.strip_prefix('(') else {
                bad.push((line, "malformed lint:allow — expected `lint:allow(<rule>): <reason>`".to_string()));
                continue;
            };
            let Some(close) = rest.find(')') else {
                bad.push((line, "malformed lint:allow — missing `)`".to_string()));
                continue;
            };
            let key = rest[..close].trim().to_string();
            let after = rest[close + 1..].trim_start();
            let reason = match after.strip_prefix(':') {
                Some(r) => r.trim().to_string(),
                None => String::new(),
            };
            allows.push(Allow { key, reason, line });
        }
    }
    (allows, bad)
}

impl<'a> SourceModel<'a> {
    /// Lexes a cleaned file into tokens, test scopes and annotations.
    pub fn new(cleaned: &'a Cleaned) -> SourceModel<'a> {
        let (allows, bad_allows) = parse_allows(&cleaned.comments);
        let raw = tokenize(&cleaned.text);
        let mut tokens: Vec<Tok<'a>> = raw
            .into_iter()
            .map(|(kind, range, line)| Tok {
                kind,
                text: &cleaned.text[range],
                line,
                in_test: false,
            })
            .collect();
        mark_test_scopes(&mut tokens);
        SourceModel { tokens, allows, bad_allows }
    }
}
