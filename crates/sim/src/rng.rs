//! Deterministic random-number streams.
//!
//! Every stochastic component of the simulation (topology generation, file
//! placement, query generation, protocol tie-breaking, churn, …) draws from its
//! own named stream. Streams are derived from a single master seed by hashing
//! the master seed together with a [`StreamId`], so
//!
//! * two runs with the same master seed are bit-for-bit identical, and
//! * adding a new consumer of randomness does not perturb existing streams
//!   (unlike handing a single `StdRng` around, where any extra draw shifts every
//!   subsequent value).

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Identifies an independent random stream.
///
/// The variants enumerate every randomised component of the reproduction; the
/// `Custom` escape hatch lets tests and examples carve out extra streams
/// without touching this crate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StreamId {
    /// Physical underlay generation (node coordinates, link latencies).
    PhysicalTopology,
    /// Landmark placement.
    Landmarks,
    /// Overlay graph generation (neighbour wiring).
    OverlayGraph,
    /// Assignment of group ids to peers.
    GroupAssignment,
    /// Keyword and filename pool generation.
    Catalog,
    /// Initial placement of shared files on peers.
    FilePlacement,
    /// Query target selection (Zipf draws) and keyword subset selection.
    QueryWorkload,
    /// Query arrival process (exponential inter-arrival times).
    Arrivals,
    /// Protocol-internal tie breaking (e.g. choosing among equally good neighbours).
    ProtocolTieBreak,
    /// Churn (session lengths, rejoin times).
    Churn,
    /// DHT identity derivation (the salts behind peer node ids and keyword
    /// record keys in the structured-protocol key space).
    DhtIds,
    /// Fault injection (per-message loss decisions, link outage membership,
    /// crash-stop selection) — the salts behind the fault plan's stateless
    /// hashes, so failure patterns are independent of every other stream.
    Faults,
    /// Anything else; the payload distinguishes multiple custom streams.
    Custom(u64),
}

impl StreamId {
    /// A stable 64-bit tag for the stream, mixed into the seed derivation.
    fn tag(self) -> u64 {
        match self {
            StreamId::PhysicalTopology => 0x01,
            StreamId::Landmarks => 0x02,
            StreamId::OverlayGraph => 0x03,
            StreamId::GroupAssignment => 0x04,
            StreamId::Catalog => 0x05,
            StreamId::FilePlacement => 0x06,
            StreamId::QueryWorkload => 0x07,
            StreamId::Arrivals => 0x08,
            StreamId::ProtocolTieBreak => 0x09,
            StreamId::Churn => 0x0a,
            StreamId::DhtIds => 0x0b,
            StreamId::Faults => 0x0c,
            StreamId::Custom(x) => 0x1000_0000_0000_0000u64 ^ x,
        }
    }
}

/// Derives independent, reproducible [`StdRng`] instances from a master seed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RngFactory {
    master_seed: u64,
}

impl RngFactory {
    /// Creates a factory from a master seed.
    pub fn new(master_seed: u64) -> Self {
        RngFactory { master_seed }
    }

    /// The master seed this factory derives from.
    pub fn master_seed(&self) -> u64 {
        self.master_seed
    }

    /// Returns the RNG for `stream`. Calling this twice with the same stream
    /// yields two generators that produce identical sequences.
    pub fn stream(&self, stream: StreamId) -> StdRng {
        StdRng::seed_from_u64(derive(self.master_seed, stream.tag()))
    }

    /// Returns the RNG for `stream`, further salted with `index`.
    ///
    /// Used when a component needs one stream *per peer* (e.g. per-peer arrival
    /// processes) so that peers remain independent of each other.
    pub fn indexed_stream(&self, stream: StreamId, index: u64) -> StdRng {
        StdRng::seed_from_u64(derive(derive(self.master_seed, stream.tag()), index))
    }

    /// Derives a child factory, e.g. one per repetition of an experiment sweep.
    pub fn child(&self, index: u64) -> RngFactory {
        RngFactory {
            master_seed: derive(self.master_seed, 0xc0ff_ee00_0000_0000u64 ^ index),
        }
    }
}

/// Stateless SplitMix64-style hash of `(seed, tag)`, public for components
/// that need a *per-event* deterministic coin rather than a sequential
/// stream — e.g. the fault plan hashes `(fault seed, sender, send sequence)`
/// so each message's loss decision is a pure function of its identity,
/// independent of the order shards process events in. Chain calls to mix in
/// more than one tag: `mix(mix(seed, a), b)`.
pub fn mix(seed: u64, tag: u64) -> u64 {
    derive(seed, tag)
}

/// SplitMix64-style mixing of a seed and a tag into a new seed.
///
/// SplitMix64 is the standard generator for seeding other PRNGs; its output is
/// equidistributed over 64 bits and two different tags virtually never collide.
fn derive(seed: u64, tag: u64) -> u64 {
    let mut z = seed ^ tag.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    fn draw(rng: &mut StdRng, n: usize) -> Vec<u64> {
        (0..n).map(|_| rng.gen()).collect()
    }

    #[test]
    fn same_stream_same_sequence() {
        let f = RngFactory::new(42);
        let a = draw(&mut f.stream(StreamId::OverlayGraph), 16);
        let b = draw(&mut f.stream(StreamId::OverlayGraph), 16);
        assert_eq!(a, b);
    }

    #[test]
    fn different_streams_differ() {
        let f = RngFactory::new(42);
        let a = draw(&mut f.stream(StreamId::OverlayGraph), 16);
        let b = draw(&mut f.stream(StreamId::QueryWorkload), 16);
        assert_ne!(a, b);
    }

    #[test]
    fn different_master_seeds_differ() {
        let a = draw(&mut RngFactory::new(1).stream(StreamId::Catalog), 16);
        let b = draw(&mut RngFactory::new(2).stream(StreamId::Catalog), 16);
        assert_ne!(a, b);
    }

    #[test]
    fn indexed_streams_are_independent() {
        let f = RngFactory::new(7);
        let a = draw(&mut f.indexed_stream(StreamId::Arrivals, 0), 8);
        let b = draw(&mut f.indexed_stream(StreamId::Arrivals, 1), 8);
        let a2 = draw(&mut f.indexed_stream(StreamId::Arrivals, 0), 8);
        assert_ne!(a, b);
        assert_eq!(a, a2);
    }

    #[test]
    fn child_factories_are_reproducible_and_distinct() {
        let f = RngFactory::new(1234);
        let c0 = f.child(0);
        let c1 = f.child(1);
        assert_ne!(c0.master_seed(), c1.master_seed());
        assert_eq!(f.child(0).master_seed(), c0.master_seed());
        let a = draw(&mut c0.stream(StreamId::Churn), 4);
        let b = draw(&mut c1.stream(StreamId::Churn), 4);
        assert_ne!(a, b);
    }

    #[test]
    fn custom_streams_distinguish_by_payload() {
        let f = RngFactory::new(99);
        let a = draw(&mut f.stream(StreamId::Custom(1)), 4);
        let b = draw(&mut f.stream(StreamId::Custom(2)), 4);
        assert_ne!(a, b);
    }
}
