//! The simulation execution loop.
//!
//! [`Engine`] owns the clock and the event queue. User code schedules events
//! (either up front or from within handlers, via [`EngineContext`]) and then
//! calls [`Engine::run`] / [`Engine::run_until`] with a handler closure. The
//! engine repeatedly pops the earliest event, advances the clock to its firing
//! time and invokes the handler.

use crate::event::{EventId, ScheduledEvent};
use crate::queue::EventQueue;
use crate::time::{Duration, SimTime};

/// Why a run loop terminated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopCondition {
    /// The event queue drained completely.
    QueueExhausted,
    /// The configured time horizon was reached before the queue drained.
    HorizonReached,
    /// The configured event budget was reached before the queue drained.
    EventBudgetReached,
    /// A handler requested an early stop through [`EngineContext::request_stop`].
    Requested,
}

/// Summary statistics of a completed run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunStats {
    /// Number of events dispatched to the handler.
    pub dispatched: u64,
    /// Simulated time at which the run stopped.
    pub end_time: SimTime,
    /// Why the run stopped.
    pub stopped: StopCondition,
}

/// Handler-facing view of the engine: the current time plus the ability to
/// schedule further events and to request an early stop.
#[derive(Debug)]
pub struct EngineContext<'a, E> {
    now: SimTime,
    queue: &'a mut EventQueue<E>,
    stop_requested: &'a mut bool,
}

impl<'a, E> EngineContext<'a, E> {
    /// Current simulated time (the firing time of the event being handled).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedules `payload` to fire `delay` after the current time.
    pub fn schedule_in(&mut self, delay: Duration, payload: E) -> EventId {
        self.queue.schedule(self.now + delay, payload)
    }

    /// Schedules `payload` at an absolute time. Times in the past are clamped
    /// to "immediately after the current event" so the clock never runs
    /// backwards.
    pub fn schedule_at(&mut self, at: SimTime, payload: E) -> EventId {
        let at = at.max(self.now);
        self.queue.schedule(at, payload)
    }

    /// Number of events still pending (not counting the one being handled).
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Asks the engine to stop after the current handler returns.
    pub fn request_stop(&mut self) {
        *self.stop_requested = true;
    }
}

/// A deterministic discrete-event simulation engine.
///
/// The payload type `E` is the event vocabulary of the embedding simulation;
/// the engine never inspects it.
#[derive(Debug)]
pub struct Engine<E> {
    queue: EventQueue<E>,
    now: SimTime,
    dispatched: u64,
    max_events: Option<u64>,
}

impl<E> Default for Engine<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> Engine<E> {
    /// Creates an engine with an empty queue and the clock at [`SimTime::ZERO`].
    pub fn new() -> Self {
        Engine {
            queue: EventQueue::new(),
            now: SimTime::ZERO,
            dispatched: 0,
            max_events: None,
        }
    }

    /// Caps the total number of events a single run may dispatch.
    ///
    /// This is a safety valve against accidental event storms (e.g. a protocol
    /// bug that floods without decrementing TTL); well-formed simulations never
    /// hit it.
    pub fn with_max_events(mut self, max_events: u64) -> Self {
        self.max_events = Some(max_events);
        self
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events dispatched so far over the engine's lifetime.
    pub fn dispatched(&self) -> u64 {
        self.dispatched
    }

    /// Number of pending events.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Schedules an event at an absolute time before the run starts (or between
    /// runs). Times earlier than the current clock are clamped to the clock.
    pub fn schedule(&mut self, at: SimTime, payload: E) -> EventId {
        let at = at.max(self.now);
        self.queue.schedule(at, payload)
    }

    /// Schedules an event `delay` after the current clock.
    pub fn schedule_in(&mut self, delay: Duration, payload: E) -> EventId {
        self.queue.schedule(self.now + delay, payload)
    }

    /// Runs until the queue is exhausted (or the event budget is hit).
    pub fn run<F>(&mut self, handler: F) -> RunStats
    where
        F: FnMut(&mut EngineContext<'_, E>, E),
    {
        self.run_until(SimTime::MAX, handler)
    }

    /// Runs until the queue is exhausted, the clock would pass `horizon`, the
    /// event budget is hit, or a handler requests a stop — whichever comes
    /// first. Events scheduled exactly at `horizon` are still dispatched.
    pub fn run_until<F>(&mut self, horizon: SimTime, mut handler: F) -> RunStats
    where
        F: FnMut(&mut EngineContext<'_, E>, E),
    {
        let start_dispatched = self.dispatched;
        let stopped = loop {
            if let Some(max) = self.max_events {
                if self.dispatched - start_dispatched >= max {
                    break StopCondition::EventBudgetReached;
                }
            }
            let next_time = match self.queue.peek_time() {
                None => break StopCondition::QueueExhausted,
                Some(t) => t,
            };
            if next_time > horizon {
                break StopCondition::HorizonReached;
            }
            let ScheduledEvent { at, payload, .. } = self
                .queue
                .pop()
                .expect("peek_time returned Some, pop must succeed");
            debug_assert!(at >= self.now, "event queue must never run time backwards");
            self.now = at;
            self.dispatched += 1;

            let mut stop_requested = false;
            {
                let mut ctx = EngineContext {
                    now: self.now,
                    queue: &mut self.queue,
                    stop_requested: &mut stop_requested,
                };
                handler(&mut ctx, payload);
            }
            if stop_requested {
                break StopCondition::Requested;
            }
        };

        RunStats {
            dispatched: self.dispatched - start_dispatched,
            end_time: self.now,
            stopped,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    enum Ev {
        Tick(u32),
        Chain(u32),
    }

    #[test]
    fn runs_events_in_time_order() {
        let mut engine = Engine::new();
        engine.schedule(SimTime::from_millis(20), Ev::Tick(2));
        engine.schedule(SimTime::from_millis(10), Ev::Tick(1));
        engine.schedule(SimTime::from_millis(30), Ev::Tick(3));

        let mut seen = Vec::new();
        let stats = engine.run(|ctx, ev| {
            if let Ev::Tick(i) = ev {
                seen.push((i, ctx.now()));
            }
        });

        assert_eq!(stats.dispatched, 3);
        assert_eq!(stats.stopped, StopCondition::QueueExhausted);
        assert_eq!(
            seen,
            vec![
                (1, SimTime::from_millis(10)),
                (2, SimTime::from_millis(20)),
                (3, SimTime::from_millis(30)),
            ]
        );
    }

    #[test]
    fn handlers_can_schedule_follow_up_events() {
        let mut engine = Engine::new();
        engine.schedule(SimTime::ZERO, Ev::Chain(0));

        let mut count = 0u32;
        let stats = engine.run(|ctx, ev| {
            if let Ev::Chain(i) = ev {
                count += 1;
                if i < 9 {
                    ctx.schedule_in(Duration::from_millis(1), Ev::Chain(i + 1));
                }
            }
        });

        assert_eq!(count, 10);
        assert_eq!(stats.end_time, SimTime::from_millis(9));
    }

    #[test]
    fn horizon_stops_the_run_but_keeps_pending_events() {
        let mut engine = Engine::new();
        for i in 0..10 {
            engine.schedule(SimTime::from_secs(i), Ev::Tick(i as u32));
        }
        let stats = engine.run_until(SimTime::from_secs(4), |_, _| {});
        assert_eq!(stats.stopped, StopCondition::HorizonReached);
        assert_eq!(stats.dispatched, 5, "events at t=0..=4s inclusive");
        assert_eq!(engine.pending(), 5);

        // A subsequent run picks up where the first left off.
        let stats2 = engine.run(|_, _| {});
        assert_eq!(stats2.dispatched, 5);
        assert_eq!(stats2.stopped, StopCondition::QueueExhausted);
        assert_eq!(engine.now(), SimTime::from_secs(9));
    }

    #[test]
    fn event_budget_is_enforced() {
        let mut engine = Engine::new().with_max_events(100);
        engine.schedule(SimTime::ZERO, Ev::Chain(0));
        let stats = engine.run(|ctx, _| {
            // Infinite chain: every event schedules another one.
            ctx.schedule_in(Duration::from_millis(1), Ev::Chain(0));
        });
        assert_eq!(stats.stopped, StopCondition::EventBudgetReached);
        assert_eq!(stats.dispatched, 100);
    }

    #[test]
    fn request_stop_halts_immediately() {
        let mut engine = Engine::new();
        for i in 0..10 {
            engine.schedule(SimTime::from_millis(i), Ev::Tick(i as u32));
        }
        let stats = engine.run(|ctx, ev| {
            if ev == Ev::Tick(3) {
                ctx.request_stop();
            }
        });
        assert_eq!(stats.stopped, StopCondition::Requested);
        assert_eq!(stats.dispatched, 4);
        assert_eq!(engine.pending(), 6);
    }

    #[test]
    fn past_times_are_clamped_to_now() {
        let mut engine = Engine::new();
        engine.schedule(SimTime::from_secs(10), Ev::Tick(0));
        let mut times = Vec::new();
        engine.run(|ctx, ev| {
            if ev == Ev::Tick(0) {
                // Try to schedule "in the past"; it must fire at now, not before.
                ctx.schedule_at(SimTime::ZERO, Ev::Tick(1));
            }
            times.push(ctx.now());
        });
        assert_eq!(times, vec![SimTime::from_secs(10), SimTime::from_secs(10)]);
    }
}
