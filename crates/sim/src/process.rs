//! Periodic processes.
//!
//! Several parts of the reproduction run on a fixed period: Bloom-filter
//! synchronisation rounds between neighbours (§4.2 of the paper) and the
//! optional churn model. [`PeriodicProcess`] is a tiny helper that tracks the
//! next firing time of such a process and produces the sequence of ticks that
//! fall inside a time window, so the embedding simulation can pre-schedule or
//! lazily re-schedule them.

use crate::time::{Duration, SimTime};

/// A fixed-period recurring process.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PeriodicProcess {
    period: Duration,
    next_fire: SimTime,
    fired: u64,
}

impl PeriodicProcess {
    /// Creates a process that first fires at `start` and then every `period`.
    ///
    /// # Panics
    /// Panics if `period` is zero — a zero-period process would livelock the
    /// event loop.
    pub fn new(start: SimTime, period: Duration) -> Self {
        assert!(!period.is_zero(), "periodic process period must be non-zero");
        PeriodicProcess {
            period,
            next_fire: start,
            fired: 0,
        }
    }

    /// The period between consecutive firings.
    pub fn period(&self) -> Duration {
        self.period
    }

    /// The next time this process is due to fire.
    pub fn next_fire(&self) -> SimTime {
        self.next_fire
    }

    /// Number of times [`advance`](Self::advance) has been called.
    pub fn fired(&self) -> u64 {
        self.fired
    }

    /// Marks the pending firing as done and moves to the next one, returning
    /// the time of the firing that was consumed.
    pub fn advance(&mut self) -> SimTime {
        let fired_at = self.next_fire;
        self.next_fire += self.period;
        self.fired += 1;
        fired_at
    }

    /// Returns every firing time in `(from, to]`, advancing the process past
    /// them. Useful when a simulation wants to catch up on missed ticks.
    pub fn ticks_until(&mut self, to: SimTime) -> Vec<SimTime> {
        let mut out = Vec::new();
        while self.next_fire <= to {
            out.push(self.advance());
        }
        out
    }

    /// True if the process is due at or before `now`.
    pub fn is_due(&self, now: SimTime) -> bool {
        self.next_fire <= now
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fires_on_a_fixed_grid() {
        let mut p = PeriodicProcess::new(SimTime::from_secs(1), Duration::from_secs(2));
        assert_eq!(p.advance(), SimTime::from_secs(1));
        assert_eq!(p.advance(), SimTime::from_secs(3));
        assert_eq!(p.advance(), SimTime::from_secs(5));
        assert_eq!(p.fired(), 3);
        assert_eq!(p.next_fire(), SimTime::from_secs(7));
    }

    #[test]
    fn ticks_until_collects_all_due_firings() {
        let mut p = PeriodicProcess::new(SimTime::ZERO, Duration::from_millis(100));
        let ticks = p.ticks_until(SimTime::from_millis(350));
        assert_eq!(
            ticks,
            vec![
                SimTime::ZERO,
                SimTime::from_millis(100),
                SimTime::from_millis(200),
                SimTime::from_millis(300),
            ]
        );
        assert_eq!(p.next_fire(), SimTime::from_millis(400));
        assert!(p.ticks_until(SimTime::from_millis(399)).is_empty());
    }

    #[test]
    fn is_due_respects_boundaries() {
        let p = PeriodicProcess::new(SimTime::from_millis(10), Duration::from_millis(10));
        assert!(!p.is_due(SimTime::from_millis(9)));
        assert!(p.is_due(SimTime::from_millis(10)));
        assert!(p.is_due(SimTime::from_millis(11)));
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_period_panics() {
        let _ = PeriodicProcess::new(SimTime::ZERO, Duration::ZERO);
    }
}
