//! # locaware-sim — deterministic discrete-event simulation engine
//!
//! The Locaware paper evaluates its protocol on [PeerSim](https://peersim.sourceforge.net),
//! a Java cycle/event-driven simulator for P2P protocols. This crate is the Rust
//! substitute used by the reproduction: a small, deterministic discrete-event
//! engine with
//!
//! * a monotonically increasing simulated clock ([`SimTime`]),
//! * a time-ordered event queue with stable FIFO tie-breaking ([`EventQueue`]),
//! * an execution loop that dispatches events to a user-supplied handler
//!   ([`Engine`]),
//! * periodic processes (used for Bloom-filter synchronisation rounds)
//!   ([`process::PeriodicProcess`]), and
//! * a hierarchical seed derivation scheme so that every stochastic component of
//!   the simulation owns an independent, reproducible random stream
//!   ([`rng::RngFactory`]), and
//! * shard-aware scheduling for deterministic intra-run parallelism: a
//!   canonical, layout-independent event ordering and window-bounded queues
//!   ([`shard::EventKey`], [`shard::ShardQueue`]).
//!
//! The engine is intentionally generic over the event payload type: the overlay,
//! workload and protocol crates define their own event enums and reuse the same
//! scheduling core.
//!
//! ## Example
//!
//! ```
//! use locaware_sim::{Engine, SimTime, Duration};
//!
//! #[derive(Debug)]
//! enum Ev { Ping(u32) }
//!
//! let mut engine = Engine::new();
//! engine.schedule(SimTime::ZERO + Duration::from_millis(5), Ev::Ping(1));
//! engine.schedule(SimTime::ZERO + Duration::from_millis(1), Ev::Ping(0));
//!
//! let mut order = Vec::new();
//! engine.run(|ctx, ev| {
//!     let Ev::Ping(i) = ev;
//!     order.push((i, ctx.now()));
//! });
//! assert_eq!(order.len(), 2);
//! assert_eq!(order[0].0, 0);
//! assert!(order[0].1 < order[1].1);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod engine;
pub mod event;
pub mod process;
pub mod queue;
pub mod rng;
pub mod shard;
pub mod time;

pub use engine::{Engine, EngineContext, RunStats, StopCondition};
pub use event::{EventId, ScheduledEvent};
pub use process::PeriodicProcess;
pub use queue::EventQueue;
pub use rng::{mix, RngFactory, StreamId};
pub use shard::{EventKey, ShardQueue};
pub use time::{Duration, SimTime};
