//! The time-ordered event queue.
//!
//! A thin wrapper over [`std::collections::BinaryHeap`] that pops events in
//! chronological order (earliest first) with stable FIFO tie-breaking provided
//! by [`EventId`] sequence numbers.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::event::{EventId, ScheduledEvent};
use crate::time::SimTime;

/// A priority queue of scheduled events, popped in chronological order.
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Reverse<ScheduledEvent<E>>>,
    next_id: EventId,
    scheduled_total: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_id: EventId::FIRST,
            scheduled_total: 0,
        }
    }

    /// Creates an empty queue with pre-allocated capacity.
    pub fn with_capacity(capacity: usize) -> Self {
        EventQueue {
            heap: BinaryHeap::with_capacity(capacity),
            next_id: EventId::FIRST,
            scheduled_total: 0,
        }
    }

    /// Schedules `payload` to fire at `at`. Returns the assigned [`EventId`].
    pub fn schedule(&mut self, at: SimTime, payload: E) -> EventId {
        let id = self.next_id;
        self.next_id = self.next_id.next();
        self.scheduled_total += 1;
        self.heap.push(Reverse(ScheduledEvent::new(at, id, payload)));
        id
    }

    /// Removes and returns the earliest event, or `None` if the queue is empty.
    pub fn pop(&mut self) -> Option<ScheduledEvent<E>> {
        self.heap.pop().map(|Reverse(ev)| ev)
    }

    /// Returns the firing time of the earliest event without removing it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|Reverse(ev)| ev.at)
    }

    /// Number of events currently pending.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Total number of events ever scheduled on this queue.
    pub fn scheduled_total(&self) -> u64 {
        self.scheduled_total
    }

    /// Drops every pending event.
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_chronological_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_millis(30), "c");
        q.schedule(SimTime::from_millis(10), "a");
        q.schedule(SimTime::from_millis(20), "b");
        let order: Vec<_> = std::iter::from_fn(|| q.pop().map(|e| e.payload)).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn same_time_is_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_millis(5);
        for i in 0..100 {
            q.schedule(t, i);
        }
        let order: Vec<_> = std::iter::from_fn(|| q.pop().map(|e| e.payload)).collect();
        let expected: Vec<_> = (0..100).collect();
        assert_eq!(order, expected);
    }

    #[test]
    fn peek_time_matches_next_pop() {
        let mut q = EventQueue::new();
        assert_eq!(q.peek_time(), None);
        q.schedule(SimTime::from_millis(7), ());
        q.schedule(SimTime::from_millis(3), ());
        assert_eq!(q.peek_time(), Some(SimTime::from_millis(3)));
        let ev = q.pop().unwrap();
        assert_eq!(ev.at, SimTime::from_millis(3));
    }

    #[test]
    fn counters_and_clear() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        q.schedule(SimTime::ZERO, 1);
        q.schedule(SimTime::ZERO, 2);
        assert_eq!(q.len(), 2);
        assert_eq!(q.scheduled_total(), 2);
        q.clear();
        assert!(q.is_empty());
        // scheduled_total is a lifetime counter and survives clear().
        assert_eq!(q.scheduled_total(), 2);
    }

    #[test]
    fn event_ids_are_unique_and_increasing() {
        let mut q = EventQueue::new();
        let a = q.schedule(SimTime::ZERO, ());
        let b = q.schedule(SimTime::ZERO, ());
        let c = q.schedule(SimTime::from_secs(1), ());
        assert!(a < b && b < c);
    }
}
