//! Simulated time.
//!
//! Time is represented as an integer number of **microseconds** since the start
//! of the simulation. Integer time keeps the event queue ordering exact (no
//! floating-point ties) and microsecond resolution is far finer than the paper's
//! millisecond-scale link latencies (10–500 ms), so no rounding artefacts can
//! influence results.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in simulated time, measured in microseconds from simulation start.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of simulated time, measured in microseconds.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Duration(u64);

impl SimTime {
    /// The origin of simulated time.
    pub const ZERO: SimTime = SimTime(0);

    /// The largest representable instant; used as a sentinel for "never".
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Builds a time from raw microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us)
    }

    /// Builds a time from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000)
    }

    /// Builds a time from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000)
    }

    /// Raw microsecond value.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Value in milliseconds (floating point, for reporting).
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Value in seconds (floating point, for reporting).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// Elapsed duration since `earlier`. Saturates at zero if `earlier` is later.
    pub fn duration_since(self, earlier: SimTime) -> Duration {
        Duration(self.0.saturating_sub(earlier.0))
    }

    /// Saturating addition of a duration.
    pub fn saturating_add(self, d: Duration) -> SimTime {
        SimTime(self.0.saturating_add(d.0))
    }
}

impl Duration {
    /// The zero-length duration.
    pub const ZERO: Duration = Duration(0);

    /// Builds a duration from raw microseconds.
    pub const fn from_micros(us: u64) -> Self {
        Duration(us)
    }

    /// Builds a duration from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        Duration(ms * 1_000)
    }

    /// Builds a duration from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        Duration(s * 1_000_000)
    }

    /// Builds a duration from fractional milliseconds (rounded to the nearest
    /// microsecond). Negative inputs clamp to zero.
    pub fn from_millis_f64(ms: f64) -> Self {
        if ms <= 0.0 {
            Duration(0)
        } else {
            Duration((ms * 1_000.0).round() as u64)
        }
    }

    /// Checked variant of [`Duration::from_millis_f64`]: returns `None` when
    /// the value cannot be represented exactly-enough as microseconds — NaN,
    /// infinite, or so large that the `f64 → u64` cast would saturate (the
    /// unchecked constructor silently clamps such inputs to `u64::MAX`
    /// microseconds, i.e. ~584 000 years). Validation paths should use this
    /// and reject the configuration instead of simulating with a saturated
    /// span. Negative inputs still clamp to zero: "no time" is representable.
    pub fn try_from_millis_f64(ms: f64) -> Option<Self> {
        if ms.is_nan() {
            return None;
        }
        if ms <= 0.0 {
            return Some(Duration(0));
        }
        let us = (ms * 1_000.0).round();
        // 2^64 exactly; any finite f64 strictly below it casts without
        // saturating. `is_finite` rejects +inf before the comparison.
        if !us.is_finite() || us >= 18_446_744_073_709_551_616.0 {
            return None;
        }
        Some(Duration(us as u64))
    }

    /// Builds a duration from fractional seconds (rounded to the nearest
    /// microsecond). Negative inputs clamp to zero.
    pub fn from_secs_f64(s: f64) -> Self {
        if s <= 0.0 {
            Duration(0)
        } else {
            Duration((s * 1_000_000.0).round() as u64)
        }
    }

    /// Raw microsecond value.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Value in milliseconds (floating point).
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Value in seconds (floating point).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// Checked multiplication by an integer factor.
    pub fn checked_mul(self, factor: u64) -> Option<Duration> {
        self.0.checked_mul(factor).map(Duration)
    }

    /// Saturating multiplication by an integer factor.
    pub fn saturating_mul(self, factor: u64) -> Duration {
        Duration(self.0.saturating_mul(factor))
    }

    /// True if this duration is zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }
}

impl Add<Duration> for SimTime {
    type Output = SimTime;

    fn add(self, rhs: Duration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<Duration> for SimTime {
    fn add_assign(&mut self, rhs: Duration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = Duration;

    fn sub(self, rhs: SimTime) -> Duration {
        Duration(self.0.saturating_sub(rhs.0))
    }
}

impl Add<Duration> for Duration {
    type Output = Duration;

    fn add(self, rhs: Duration) -> Duration {
        Duration(self.0 + rhs.0)
    }
}

impl AddAssign<Duration> for Duration {
    fn add_assign(&mut self, rhs: Duration) {
        self.0 += rhs.0;
    }
}

impl Sub<Duration> for Duration {
    type Output = Duration;

    fn sub(self, rhs: Duration) -> Duration {
        Duration(self.0.saturating_sub(rhs.0))
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={}us", self.0)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.as_secs_f64())
    }
}

impl fmt::Debug for Duration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}us", self.0)
    }
}

impl fmt::Display for Duration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}ms", self.as_millis_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_round_trip() {
        assert_eq!(SimTime::from_millis(10).as_micros(), 10_000);
        assert_eq!(SimTime::from_secs(2).as_micros(), 2_000_000);
        assert_eq!(Duration::from_millis(500).as_micros(), 500_000);
        assert_eq!(Duration::from_secs(1).as_millis_f64(), 1000.0);
    }

    #[test]
    fn time_plus_duration_advances() {
        let t = SimTime::from_millis(100) + Duration::from_millis(50);
        assert_eq!(t, SimTime::from_millis(150));
    }

    #[test]
    fn time_difference_is_duration() {
        let a = SimTime::from_millis(100);
        let b = SimTime::from_millis(175);
        assert_eq!(b - a, Duration::from_millis(75));
        // Saturating: earlier minus later is zero, not a panic.
        assert_eq!(a - b, Duration::ZERO);
    }

    #[test]
    fn duration_since_saturates() {
        let a = SimTime::from_millis(10);
        let b = SimTime::from_millis(20);
        assert_eq!(b.duration_since(a), Duration::from_millis(10));
        assert_eq!(a.duration_since(b), Duration::ZERO);
    }

    #[test]
    fn fractional_constructors_round() {
        assert_eq!(Duration::from_millis_f64(1.5).as_micros(), 1_500);
        assert_eq!(Duration::from_millis_f64(-3.0), Duration::ZERO);
        assert_eq!(Duration::from_secs_f64(0.25).as_micros(), 250_000);
        assert_eq!(Duration::from_secs_f64(-1.0), Duration::ZERO);
    }

    #[test]
    fn try_from_millis_rejects_unrepresentable_spans() {
        assert_eq!(
            Duration::try_from_millis_f64(1.5),
            Some(Duration::from_micros(1_500))
        );
        assert_eq!(Duration::try_from_millis_f64(-3.0), Some(Duration::ZERO));
        assert_eq!(Duration::try_from_millis_f64(f64::NAN), None);
        assert_eq!(Duration::try_from_millis_f64(f64::INFINITY), None);
        // 2^64 microseconds is not representable; the unchecked constructor
        // would silently saturate here.
        let overflow_ms = 18_446_744_073_709_551_616.0 / 1_000.0;
        assert_eq!(Duration::try_from_millis_f64(overflow_ms), None);
        assert_eq!(
            Duration::from_millis_f64(overflow_ms),
            Duration::from_micros(u64::MAX),
            "documented saturation of the unchecked constructor"
        );
        // Just below the limit stays representable (1e15 ms = 1e18 us).
        assert!(Duration::try_from_millis_f64(1.0e15).is_some());
    }

    #[test]
    fn ordering_is_chronological() {
        let mut times = vec![
            SimTime::from_millis(5),
            SimTime::ZERO,
            SimTime::from_secs(1),
            SimTime::from_micros(1),
        ];
        times.sort();
        assert_eq!(
            times,
            vec![
                SimTime::ZERO,
                SimTime::from_micros(1),
                SimTime::from_millis(5),
                SimTime::from_secs(1),
            ]
        );
    }

    #[test]
    fn saturating_ops() {
        assert_eq!(SimTime::MAX.saturating_add(Duration::from_secs(1)), SimTime::MAX);
        assert_eq!(
            Duration::from_secs(1).saturating_mul(u64::MAX),
            Duration::from_micros(u64::MAX)
        );
        assert_eq!(Duration::from_millis(2).checked_mul(3), Some(Duration::from_millis(6)));
        assert_eq!(Duration::from_micros(u64::MAX).checked_mul(2), None);
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", Duration::from_millis(250)), "250.000ms");
        assert_eq!(format!("{}", SimTime::from_secs(3)), "3.000s");
        assert_eq!(format!("{:?}", SimTime::from_micros(42)), "t=42us");
    }
}
