//! Shard-aware scheduling: canonical event ordering and windowed queues.
//!
//! A sharded simulation partitions its entities over several event queues and
//! drains them in parallel over bounded time windows. For the results to be
//! bit-identical for *every* shard count, event ordering must not depend on
//! which queue an event happens to sit in — so the plain [`EventQueue`]'s
//! insertion-order tie-breaking (a global counter that encodes scheduling
//! history) is replaced by a **canonical key** that is a pure function of the
//! event itself:
//!
//! * `time` — the firing time (primary, as always),
//! * `class` — a small rank separating event families at equal times (e.g.
//!   query issues before periodic maintenance before deliveries, mirroring the
//!   initial-scheduling order of the sequential engine),
//! * `a`, `b` — embedding-defined discriminators (destination/source entity,
//!   per-channel FIFO sequence numbers, schedule indices) that make the order
//!   total and shard-layout-independent.
//!
//! [`ShardQueue`] is a priority queue over such keys with a *bounded pop*:
//! `pop_before(bound)` only surrenders events strictly below a window bound,
//! which is what lets a coordinator drain many shards concurrently up to a
//! common horizon and merge cross-shard traffic at the barrier.
//!
//! [`EventQueue`]: crate::queue::EventQueue

use std::cmp::{Ordering, Reverse};
use std::collections::BinaryHeap;

use crate::time::SimTime;

/// A canonical, shard-layout-independent ordering key for one event.
///
/// Keys order lexicographically by `(time, class, a, b)`. The embedding
/// chooses the `class`/`a`/`b` encoding; the only contract is that the key is
/// derived from the event's identity (never from scheduling history), so two
/// executions that generate the same events order them identically no matter
/// how the entities are partitioned.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EventKey {
    /// Firing time (primary order).
    pub time: SimTime,
    /// Event-family rank at equal times.
    pub class: u8,
    /// First embedding-defined discriminator.
    pub a: u64,
    /// Second embedding-defined discriminator.
    pub b: u64,
}

impl EventKey {
    /// The largest representable key; useful as an "unbounded" window end.
    pub const MAX: EventKey = EventKey {
        time: SimTime::MAX,
        class: u8::MAX,
        a: u64::MAX,
        b: u64::MAX,
    };

    /// Builds a key.
    pub const fn new(time: SimTime, class: u8, a: u64, b: u64) -> Self {
        EventKey { time, class, a, b }
    }

    /// The window bound that admits **every** key with `key.time < t` and
    /// none at or after `t` (all real keys at `t` compare `>=` this bound
    /// except a class-0 key with zero discriminators, which embeddings must
    /// not treat as below it — [`ShardQueue::pop_before`] uses strict `<`).
    pub const fn before_time(t: SimTime) -> Self {
        EventKey {
            time: t,
            class: 0,
            a: 0,
            b: 0,
        }
    }
}

/// One keyed event in a [`ShardQueue`]. Ordering ignores the payload.
#[derive(Debug, Clone)]
struct KeyedEvent<E> {
    key: EventKey,
    payload: E,
}

impl<E> PartialEq for KeyedEvent<E> {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key
    }
}

impl<E> Eq for KeyedEvent<E> {}

impl<E> PartialOrd for KeyedEvent<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for KeyedEvent<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        self.key.cmp(&other.key)
    }
}

/// A canonical-key-ordered event queue for one shard.
///
/// Unlike [`EventQueue`](crate::queue::EventQueue), which tie-breaks equal
/// times by insertion order, every event carries an explicit [`EventKey`];
/// popping returns events in key order regardless of push order, and
/// [`ShardQueue::pop_before`] bounds the drain to a window.
#[derive(Debug, Clone)]
pub struct ShardQueue<E> {
    heap: BinaryHeap<Reverse<KeyedEvent<E>>>,
}

impl<E> Default for ShardQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> ShardQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        ShardQueue {
            heap: BinaryHeap::new(),
        }
    }

    /// Creates an empty queue with pre-allocated capacity.
    pub fn with_capacity(capacity: usize) -> Self {
        ShardQueue {
            heap: BinaryHeap::with_capacity(capacity),
        }
    }

    /// Schedules `payload` under `key`.
    pub fn push(&mut self, key: EventKey, payload: E) {
        self.heap.push(Reverse(KeyedEvent { key, payload }));
    }

    /// The smallest pending key, if any.
    pub fn peek_key(&self) -> Option<EventKey> {
        self.heap.peek().map(|Reverse(ev)| ev.key)
    }

    /// Removes and returns the earliest event **strictly below** `bound`,
    /// or `None` when the earliest pending event is at or past the bound
    /// (or the queue is empty).
    pub fn pop_before(&mut self, bound: EventKey) -> Option<(EventKey, E)> {
        match self.heap.peek() {
            Some(Reverse(ev)) if ev.key < bound => {
                let Reverse(ev) = self.heap.pop().expect("peeked event must pop");
                Some((ev.key, ev.payload))
            }
            _ => None,
        }
    }

    /// Removes and returns the earliest event unconditionally.
    pub fn pop(&mut self) -> Option<(EventKey, E)> {
        self.pop_before(EventKey::MAX)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True if nothing is pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(us: u64, class: u8, a: u64, b: u64) -> EventKey {
        EventKey::new(SimTime::from_micros(us), class, a, b)
    }

    #[test]
    fn keys_order_lexicographically() {
        let ordered = [
            key(1, 3, 9, 9),
            key(2, 0, 0, 0),
            key(2, 0, 0, 1),
            key(2, 0, 1, 0),
            key(2, 1, 0, 0),
            key(2, 3, 0, 0),
            key(3, 0, 0, 0),
        ];
        for pair in ordered.windows(2) {
            assert!(pair[0] < pair[1], "{:?} must precede {:?}", pair[0], pair[1]);
        }
    }

    #[test]
    fn pop_order_is_key_order_not_push_order() {
        let mut q = ShardQueue::new();
        q.push(key(5, 3, 2, 0), "late");
        q.push(key(5, 0, 7, 0), "issue");
        q.push(key(1, 3, 0, 0), "early");
        q.push(key(5, 3, 1, 0), "mid");
        let order: Vec<_> = std::iter::from_fn(|| q.pop().map(|(_, p)| p)).collect();
        assert_eq!(order, vec!["early", "issue", "mid", "late"]);
    }

    #[test]
    fn pop_before_respects_the_strict_bound() {
        let mut q = ShardQueue::new();
        q.push(key(10, 0, 1, 0), "issue-at-10");
        q.push(key(10, 3, 0, 0), "deliver-at-10");
        q.push(key(9, 3, 0, 0), "deliver-at-9");

        // `before_time(10)` admits only strictly-earlier times...
        let bound = EventKey::before_time(SimTime::from_micros(10));
        assert_eq!(q.pop_before(bound).map(|(_, p)| p), Some("deliver-at-9"));
        assert_eq!(q.pop_before(bound), None);
        assert_eq!(q.len(), 2);

        // ...while a class-1 bound at t=10 additionally admits the class-0
        // issue at exactly t=10 (the "issues before maintenance" ordering).
        let ctrl = key(10, 1, 0, 0);
        assert_eq!(q.pop_before(ctrl).map(|(_, p)| p), Some("issue-at-10"));
        assert_eq!(q.pop_before(ctrl), None);
        assert_eq!(q.pop().map(|(_, p)| p), Some("deliver-at-10"));
        assert!(q.is_empty());
    }

    #[test]
    fn peek_key_matches_next_pop() {
        let mut q = ShardQueue::new();
        assert_eq!(q.peek_key(), None);
        q.push(key(7, 3, 0, 0), ());
        q.push(key(3, 3, 0, 0), ());
        assert_eq!(q.peek_key(), Some(key(3, 3, 0, 0)));
        let (k, _) = q.pop().unwrap();
        assert_eq!(k, key(3, 3, 0, 0));
    }

    #[test]
    fn max_key_bound_drains_everything() {
        let mut q = ShardQueue::with_capacity(8);
        for i in 0..8u64 {
            q.push(key(i, 3, 0, 0), i);
        }
        let mut n = 0;
        while q.pop_before(EventKey::MAX).is_some() {
            n += 1;
        }
        assert_eq!(n, 8);
    }
}
