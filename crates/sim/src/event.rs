//! Scheduled events and their ordering.
//!
//! Events are ordered first by their firing time, then by a monotonically
//! increasing sequence number. The sequence number guarantees a *stable* FIFO
//! order among events scheduled for the same instant, which is essential for
//! reproducibility: two runs with the same seed must dispatch identical event
//! sequences.

use std::cmp::Ordering;

use crate::time::SimTime;

/// Unique, monotonically increasing identifier assigned to each scheduled event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EventId(pub u64);

impl EventId {
    /// The first event id handed out by a fresh queue.
    pub const FIRST: EventId = EventId(0);

    /// Returns the next id in sequence.
    pub fn next(self) -> EventId {
        EventId(self.0 + 1)
    }
}

/// An event together with the time at which it fires and its insertion sequence.
#[derive(Debug, Clone)]
pub struct ScheduledEvent<E> {
    /// When the event fires.
    pub at: SimTime,
    /// Insertion order; breaks ties among events with equal `at`.
    pub id: EventId,
    /// User payload.
    pub payload: E,
}

impl<E> ScheduledEvent<E> {
    /// Creates a new scheduled event.
    pub fn new(at: SimTime, id: EventId, payload: E) -> Self {
        ScheduledEvent { at, id, payload }
    }

    /// The ordering key `(time, sequence)`.
    pub fn key(&self) -> (SimTime, EventId) {
        (self.at, self.id)
    }
}

impl<E> PartialEq for ScheduledEvent<E> {
    fn eq(&self, other: &Self) -> bool {
        self.key() == other.key()
    }
}

impl<E> Eq for ScheduledEvent<E> {}

impl<E> PartialOrd for ScheduledEvent<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for ScheduledEvent<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        self.key().cmp(&other.key())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_by_time_then_sequence() {
        let a = ScheduledEvent::new(SimTime::from_millis(5), EventId(0), ());
        let b = ScheduledEvent::new(SimTime::from_millis(5), EventId(1), ());
        let c = ScheduledEvent::new(SimTime::from_millis(3), EventId(2), ());
        assert!(c < a, "earlier time sorts first");
        assert!(a < b, "same time: lower sequence sorts first");
    }

    #[test]
    fn equality_ignores_payload() {
        let a = ScheduledEvent::new(SimTime::from_millis(1), EventId(7), 10u32);
        let b = ScheduledEvent::new(SimTime::from_millis(1), EventId(7), 99u32);
        assert_eq!(a, b);
    }

    #[test]
    fn event_id_next_increments() {
        assert_eq!(EventId::FIRST.next(), EventId(1));
        assert_eq!(EventId(41).next(), EventId(42));
    }
}
