//! The plain Bloom filter exchanged between neighbours.

use serde::{Deserialize, Serialize};

use crate::hashing::ElementHashes;
use crate::{DEFAULT_HASHES, PAPER_FILTER_BITS};

/// Size/shape parameters of a Bloom filter.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct BloomParams {
    /// Number of bits in the filter (`m`).
    pub bits: usize,
    /// Number of hash probes per element (`k`).
    pub hashes: usize,
}

impl Default for BloomParams {
    fn default() -> Self {
        BloomParams {
            bits: PAPER_FILTER_BITS,
            hashes: DEFAULT_HASHES,
        }
    }
}

impl BloomParams {
    /// Creates parameters after validating them.
    ///
    /// # Panics
    /// Panics if `bits` or `hashes` is zero.
    pub fn new(bits: usize, hashes: usize) -> Self {
        assert!(bits > 0, "Bloom filter must have at least one bit");
        assert!(hashes > 0, "Bloom filter must use at least one hash");
        BloomParams { bits, hashes }
    }

    /// The theoretically optimal number of hashes for an expected population of
    /// `n` elements: `k = (m / n) · ln 2`, clamped to at least 1.
    pub fn optimal_hashes(bits: usize, expected_elements: usize) -> usize {
        if expected_elements == 0 {
            return 1;
        }
        let k = (bits as f64 / expected_elements as f64) * std::f64::consts::LN_2;
        (k.round() as usize).max(1)
    }

    /// Expected false-positive probability with `n` inserted elements.
    pub fn false_positive_rate(&self, n: usize) -> f64 {
        let m = self.bits as f64;
        let k = self.hashes as f64;
        let exponent = -k * n as f64 / m;
        (1.0 - exponent.exp()).powf(k)
    }
}

/// A fixed-size Bloom filter over string elements (keywords).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BloomFilter {
    params: BloomParams,
    words: Vec<u64>,
    /// Number of `insert` calls (not distinct elements); diagnostic only.
    insertions: u64,
}

/// Two filters are equal when they have the same parameters and the same bit
/// pattern; the diagnostic insertion counter is deliberately ignored so that a
/// filter reconstructed from deltas compares equal to the original.
impl PartialEq for BloomFilter {
    fn eq(&self, other: &Self) -> bool {
        self.params == other.params && self.words == other.words
    }
}

impl Eq for BloomFilter {}

impl Default for BloomFilter {
    fn default() -> Self {
        Self::new(BloomParams::default())
    }
}

impl BloomFilter {
    /// Creates an empty filter with the given parameters.
    pub fn new(params: BloomParams) -> Self {
        let words = vec![0u64; params.bits.div_ceil(64)];
        BloomFilter {
            params,
            words,
            insertions: 0,
        }
    }

    /// Creates an empty filter with the paper's 1200-bit configuration.
    pub fn paper_default() -> Self {
        Self::default()
    }

    /// The filter's parameters.
    pub fn params(&self) -> BloomParams {
        self.params
    }

    /// Number of bits in the filter.
    pub fn bits(&self) -> usize {
        self.params.bits
    }

    /// Inserts a string element.
    pub fn insert(&mut self, element: &str) {
        self.insert_hashes(&ElementHashes::of_str(element));
    }

    /// Inserts a pre-hashed element.
    pub fn insert_hashes(&mut self, hashes: &ElementHashes) {
        for pos in hashes.positions(self.params.hashes, self.params.bits) {
            self.set_bit(pos);
        }
        self.insertions += 1;
    }

    /// Membership test for a string element. May return false positives but
    /// never false negatives.
    pub fn contains(&self, element: &str) -> bool {
        self.contains_hashes(&ElementHashes::of_str(element))
    }

    /// Membership test for a pre-hashed element.
    pub fn contains_hashes(&self, hashes: &ElementHashes) -> bool {
        hashes
            .positions(self.params.hashes, self.params.bits)
            .all(|pos| self.get_bit(pos))
    }

    /// True if **all** of `elements` are (apparently) members.
    ///
    /// This is the neighbour-selection test of §4.2: a neighbour's filter
    /// "matches q" iff every keyword of `q` is a member.
    pub fn contains_all<'a, I>(&self, elements: I) -> bool
    where
        I: IntoIterator<Item = &'a str>,
    {
        elements.into_iter().all(|e| self.contains(e))
    }

    /// [`BloomFilter::contains_all`] over pre-hashed elements.
    ///
    /// The routing hot path tests every query keyword against the filter of
    /// every neighbour at every hop; hashing a keyword costs far more than the
    /// `k` word probes, so callers that test the same keywords against many
    /// filters should hash once (e.g. via an interned [`ElementHashes`] table)
    /// and use this fast path. Semantically identical to hashing each element
    /// on the fly: `contains_all(es) == contains_all_hashes(es.map(hash))`.
    pub fn contains_all_hashes(&self, hashes: &[ElementHashes]) -> bool {
        hashes.iter().all(|h| self.contains_hashes(h))
    }

    /// Sets bit `pos`; returns whether the bit changed.
    pub fn set_bit(&mut self, pos: usize) -> bool {
        assert!(pos < self.params.bits, "bit index out of range");
        let word = pos / 64;
        let mask = 1u64 << (pos % 64);
        let changed = self.words[word] & mask == 0;
        self.words[word] |= mask;
        changed
    }

    /// Clears bit `pos`; returns whether the bit changed.
    pub fn clear_bit(&mut self, pos: usize) -> bool {
        assert!(pos < self.params.bits, "bit index out of range");
        let word = pos / 64;
        let mask = 1u64 << (pos % 64);
        let changed = self.words[word] & mask != 0;
        self.words[word] &= !mask;
        changed
    }

    /// Reads bit `pos`.
    pub fn get_bit(&self, pos: usize) -> bool {
        assert!(pos < self.params.bits, "bit index out of range");
        self.words[pos / 64] & (1u64 << (pos % 64)) != 0
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Fraction of set bits (the filter's load factor).
    pub fn fill_ratio(&self) -> f64 {
        self.count_ones() as f64 / self.params.bits as f64
    }

    /// Number of `insert` calls so far.
    pub fn insertions(&self) -> u64 {
        self.insertions
    }

    /// Resets the filter to empty.
    pub fn clear(&mut self) {
        self.words.iter_mut().for_each(|w| *w = 0);
        self.insertions = 0;
    }

    /// True if no bit is set.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Positions of bits that differ from `other`.
    ///
    /// # Panics
    /// Panics if the two filters have different parameters.
    pub fn changed_bits(&self, other: &BloomFilter) -> Vec<usize> {
        assert_eq!(
            self.params, other.params,
            "cannot diff filters with different parameters"
        );
        let mut out = Vec::new();
        for (w, (a, b)) in self.words.iter().zip(other.words.iter()).enumerate() {
            let mut diff = a ^ b;
            while diff != 0 {
                let bit = diff.trailing_zeros() as usize;
                let pos = w * 64 + bit;
                if pos < self.params.bits {
                    out.push(pos);
                }
                diff &= diff - 1;
            }
        }
        out
    }

    /// Bitwise union with another filter (used in tests and in the ablation
    /// where a peer aggregates neighbour filters).
    ///
    /// # Panics
    /// Panics if the two filters have different parameters.
    pub fn union_with(&mut self, other: &BloomFilter) {
        assert_eq!(
            self.params, other.params,
            "cannot union filters with different parameters"
        );
        for (a, b) in self.words.iter_mut().zip(other.words.iter()) {
            *a |= b;
        }
    }

    /// Raw words backing the filter (read-only; for serialisation and tests).
    pub fn words(&self) -> &[u64] {
        &self.words
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_false_negatives() {
        let mut f = BloomFilter::paper_default();
        let elements: Vec<String> = (0..150).map(|i| format!("keyword-{i}")).collect();
        for e in &elements {
            f.insert(e);
        }
        for e in &elements {
            assert!(f.contains(e), "inserted element {e} must be found");
        }
    }

    #[test]
    fn empty_filter_contains_nothing() {
        let f = BloomFilter::paper_default();
        assert!(!f.contains("anything"));
        assert!(f.is_empty());
        assert_eq!(f.count_ones(), 0);
    }

    #[test]
    fn false_positive_rate_is_low_at_paper_load() {
        // Paper load: 50 filenames × 3 keywords = 150 elements in 1200 bits.
        let mut f = BloomFilter::paper_default();
        for i in 0..150 {
            f.insert(&format!("present-{i}"));
        }
        let trials = 10_000;
        let false_positives = (0..trials)
            .filter(|i| f.contains(&format!("absent-{i}")))
            .count();
        let rate = false_positives as f64 / trials as f64;
        assert!(rate < 0.10, "false positive rate too high: {rate}");
        // And the analytic estimate should be in the same ballpark.
        let predicted = f.params().false_positive_rate(150);
        assert!(predicted < 0.10, "analytic rate unexpectedly high: {predicted}");
    }

    #[test]
    fn contains_all_requires_every_keyword() {
        let mut f = BloomFilter::paper_default();
        f.insert("madonna");
        f.insert("like");
        f.insert("prayer");
        assert!(f.contains_all(["madonna", "prayer"]));
        assert!(!f.contains_all(["madonna", "zzz-not-there-zzz"]));
        assert!(f.contains_all::<[&str; 0]>([]), "vacuous truth on empty query");
    }

    #[test]
    fn contains_all_hashes_agrees_with_the_string_path() {
        let mut f = BloomFilter::paper_default();
        for i in 0..150 {
            f.insert(&format!("kw{i}"));
        }
        for query in [vec!["kw0"], vec!["kw1", "kw2"], vec!["kw3", "nope"], vec![]] {
            let hashes: Vec<ElementHashes> =
                query.iter().map(|e| ElementHashes::of_str(e)).collect();
            assert_eq!(
                f.contains_all(query.iter().copied()),
                f.contains_all_hashes(&hashes),
                "query {query:?} must agree between the string and pre-hashed paths"
            );
        }
    }

    #[test]
    fn bit_operations_round_trip() {
        let mut f = BloomFilter::new(BloomParams::new(128, 3));
        assert!(f.set_bit(5));
        assert!(!f.set_bit(5), "setting an already-set bit reports no change");
        assert!(f.get_bit(5));
        assert!(f.clear_bit(5));
        assert!(!f.clear_bit(5));
        assert!(!f.get_bit(5));
    }

    #[test]
    fn changed_bits_lists_exact_difference() {
        let mut a = BloomFilter::new(BloomParams::new(200, 3));
        let mut b = BloomFilter::new(BloomParams::new(200, 3));
        a.set_bit(3);
        a.set_bit(64);
        b.set_bit(64);
        b.set_bit(199);
        let mut diff = a.changed_bits(&b);
        diff.sort_unstable();
        assert_eq!(diff, vec![3, 199]);
    }

    #[test]
    fn union_is_superset_of_both() {
        let mut a = BloomFilter::paper_default();
        let mut b = BloomFilter::paper_default();
        a.insert("only-in-a");
        b.insert("only-in-b");
        a.union_with(&b);
        assert!(a.contains("only-in-a"));
        assert!(a.contains("only-in-b"));
    }

    #[test]
    fn clear_resets_everything() {
        let mut f = BloomFilter::paper_default();
        f.insert("x");
        assert!(!f.is_empty());
        f.clear();
        assert!(f.is_empty());
        assert_eq!(f.insertions(), 0);
        assert!(!f.contains("x"));
    }

    #[test]
    fn optimal_hashes_formula() {
        // m=1200, n=150 → (8)·ln2 ≈ 5.5 → 6 after rounding; but never 0.
        let k = BloomParams::optimal_hashes(1200, 150);
        assert!((5..=6).contains(&k));
        assert_eq!(BloomParams::optimal_hashes(1200, 0), 1);
        assert_eq!(BloomParams::optimal_hashes(8, 10_000), 1);
    }

    #[test]
    fn fill_ratio_grows_with_insertions() {
        let mut f = BloomFilter::paper_default();
        let before = f.fill_ratio();
        for i in 0..50 {
            f.insert(&format!("kw{i}"));
        }
        assert!(f.fill_ratio() > before);
        assert!(f.fill_ratio() <= 1.0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_bit_panics() {
        let f = BloomFilter::new(BloomParams::new(10, 1));
        let _ = f.get_bit(10);
    }

    #[test]
    #[should_panic(expected = "different parameters")]
    fn diffing_mismatched_filters_panics() {
        let a = BloomFilter::new(BloomParams::new(100, 3));
        let b = BloomFilter::new(BloomParams::new(200, 3));
        let _ = a.changed_bits(&b);
    }
}
