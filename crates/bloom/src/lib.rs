//! # locaware-bloom — Bloom filters for keyword-query routing
//!
//! §4.2 of the Locaware paper: *"we use a Bloom filter to express filenames'
//! keywords in a response index and to send the filter to neighbors. [...]
//! Each peer n maintains a Bloom filter, noted BFn, that represents the set of
//! keywords of all cached filenames in RIn."* Neighbouring peers exchange their
//! filters, and a peer forwards a query to the neighbours whose filter contains
//! **all** query keywords.
//!
//! The paper sizes the filter at **1200 bits** for a response index of 50
//! filenames × 3 keywords (§5.1) and propagates *incremental updates* as the
//! positions of changed bits — the footnote bounds an update at 12 changed bits
//! × 11 bits per position ≈ 0.132 Kb.
//!
//! This crate provides:
//!
//! * [`BloomFilter`] — the fixed-size bit-vector filter exchanged between
//!   neighbours,
//! * [`CountingBloomFilter`] — the per-peer counting variant that supports
//!   removal when index entries are evicted from the response index, and from
//!   which the plain filter is projected,
//! * [`BloomDelta`] — the changed-bit-position encoding of §4.2's footnote,
//! * [`hashing`] — the double-hashing scheme used to derive the `k` bit
//!   positions of an element.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod counting;
pub mod delta;
pub mod filter;
pub mod hashing;

pub use counting::CountingBloomFilter;
pub use delta::BloomDelta;
pub use filter::{BloomFilter, BloomParams};
pub use hashing::ElementHashes;

/// The paper's Bloom-filter size in bits (§5.1): sized for an "enlarged
/// response index with 50 filenames of 3 keywords".
pub const PAPER_FILTER_BITS: usize = 1200;

/// The default number of hash functions.
///
/// For `m = 1200` bits and `n = 150` keywords the optimum is
/// `k = (m / n) ln 2 ≈ 5.5`; we use 5, giving a false-positive rate of about
/// 2 % at full load and much less at typical load.
pub const DEFAULT_HASHES: usize = 5;
