//! The counting Bloom filter each peer keeps privately.
//!
//! §4.2: the filter must follow the response index "as new filenames are
//! inserted in RIn and existing ones discarded". A plain Bloom filter cannot
//! delete, so each peer maintains a **counting** filter (one small counter per
//! bit) and projects it onto the plain 1200-bit filter that is exchanged with
//! neighbours. This mirrors the Summary-Cache design ([Fan et al. 1998], cited
//! by the paper) where counting filters stay local and plain bit vectors travel.

use serde::{Deserialize, Serialize};

use crate::filter::{BloomFilter, BloomParams};
use crate::hashing::ElementHashes;

/// A Bloom filter with per-position counters, supporting element removal.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CountingBloomFilter {
    params: BloomParams,
    counters: Vec<u16>,
}

impl Default for CountingBloomFilter {
    fn default() -> Self {
        Self::new(BloomParams::default())
    }
}

impl CountingBloomFilter {
    /// Creates an empty counting filter.
    pub fn new(params: BloomParams) -> Self {
        CountingBloomFilter {
            counters: vec![0; params.bits],
            params,
        }
    }

    /// The filter's parameters.
    pub fn params(&self) -> BloomParams {
        self.params
    }

    /// Inserts a string element, incrementing its counters.
    pub fn insert(&mut self, element: &str) {
        self.insert_hashes(&ElementHashes::of_str(element));
    }

    /// Inserts a pre-hashed element.
    pub fn insert_hashes(&mut self, hashes: &ElementHashes) {
        for pos in hashes.positions(self.params.hashes, self.params.bits) {
            self.counters[pos] = self.counters[pos].saturating_add(1);
        }
    }

    /// Removes a string element, decrementing its counters.
    ///
    /// Removing an element that was never inserted is a logic error upstream;
    /// the counters saturate at zero rather than wrapping, so the filter
    /// degrades to (at worst) extra false positives, never false negatives for
    /// elements still present.
    pub fn remove(&mut self, element: &str) {
        self.remove_hashes(&ElementHashes::of_str(element));
    }

    /// Removes a pre-hashed element.
    pub fn remove_hashes(&mut self, hashes: &ElementHashes) {
        for pos in hashes.positions(self.params.hashes, self.params.bits) {
            self.counters[pos] = self.counters[pos].saturating_sub(1);
        }
    }

    /// Membership test (same semantics as the plain filter).
    pub fn contains(&self, element: &str) -> bool {
        ElementHashes::of_str(element)
            .positions(self.params.hashes, self.params.bits)
            .all(|pos| self.counters[pos] > 0)
    }

    /// Projects the counting filter onto a plain [`BloomFilter`] (counter > 0 ⇒
    /// bit set). This is the representation sent to neighbours.
    pub fn to_bloom(&self) -> BloomFilter {
        let mut f = BloomFilter::new(self.params);
        for (pos, &c) in self.counters.iter().enumerate() {
            if c > 0 {
                f.set_bit(pos);
            }
        }
        f
    }

    /// Number of positions with non-zero counters.
    pub fn count_nonzero(&self) -> usize {
        self.counters.iter().filter(|&&c| c > 0).count()
    }

    /// True if every counter is zero.
    pub fn is_empty(&self) -> bool {
        self.counters.iter().all(|&c| c == 0)
    }

    /// Resets every counter to zero.
    pub fn clear(&mut self) {
        self.counters.iter_mut().for_each(|c| *c = 0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_then_remove_restores_emptiness() {
        let mut f = CountingBloomFilter::default();
        let kws = ["alpha", "beta", "gamma"];
        for k in kws {
            f.insert(k);
        }
        for k in kws {
            assert!(f.contains(k));
        }
        for k in kws {
            f.remove(k);
        }
        assert!(f.is_empty());
        for k in kws {
            assert!(!f.contains(k));
        }
    }

    #[test]
    fn duplicate_insertions_need_matching_removals() {
        let mut f = CountingBloomFilter::default();
        // The same keyword can appear in several cached filenames.
        f.insert("love");
        f.insert("love");
        f.remove("love");
        assert!(f.contains("love"), "still one reference outstanding");
        f.remove("love");
        assert!(!f.contains("love"));
    }

    #[test]
    fn projection_matches_membership() {
        let mut c = CountingBloomFilter::default();
        for i in 0..40 {
            c.insert(&format!("kw{i}"));
        }
        let plain = c.to_bloom();
        for i in 0..40 {
            assert!(plain.contains(&format!("kw{i}")));
        }
        assert_eq!(plain.count_ones(), c.count_nonzero());
    }

    #[test]
    fn removal_of_absent_element_saturates_at_zero() {
        let mut f = CountingBloomFilter::default();
        f.insert("present");
        f.remove("never-inserted");
        // "present" may share bits with the removed element only with tiny
        // probability; what we guarantee structurally is no underflow panic and
        // no wrap-around to huge counters.
        assert!(f.count_nonzero() <= 5 * 2);
        f.clear();
        assert!(f.is_empty());
    }

    #[test]
    fn projection_of_empty_filter_is_empty() {
        let c = CountingBloomFilter::default();
        assert!(c.to_bloom().is_empty());
    }
}
