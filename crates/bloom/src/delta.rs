//! Incremental Bloom-filter updates ("changed-bit" deltas).
//!
//! §4.2, footnote 1: *"when a filename is added or deleted, a small number of
//! bits may change in the bit vector of the BF. Thus, n only needs to transmit
//! the location of the changed bits. The number of changed bits in a 1200-bit
//! vector of the BF is limited by 12 at most and the location of each bit by 11
//! bits. Thus, the information to be sent is limited by I = 12 · 11 bits =
//! 0.132 Kb."*
//!
//! [`BloomDelta`] captures exactly that encoding: the positions whose bit value
//! flipped between two filter snapshots, plus the cost accounting (11 bits per
//! position for a 1200-bit filter, `ceil(log2 m)` in general).

use serde::{Deserialize, Serialize};

use crate::filter::BloomFilter;

/// The set of bit positions that flipped between two snapshots of a filter.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BloomDelta {
    /// Flipped bit positions, in increasing order.
    positions: Vec<u32>,
    /// Number of bits in the underlying filter (needed to size the encoding).
    filter_bits: u32,
}

impl BloomDelta {
    /// Computes the delta that transforms `old` into `new`.
    ///
    /// # Panics
    /// Panics if the two filters have different parameters.
    pub fn between(old: &BloomFilter, new: &BloomFilter) -> Self {
        let positions = old.changed_bits(new).into_iter().map(|p| p as u32).collect();
        BloomDelta {
            positions,
            filter_bits: old.bits() as u32,
        }
    }

    /// Builds a delta from raw positions (used by tests and by the overlay's
    /// message decoding).
    pub fn from_positions(positions: Vec<u32>, filter_bits: u32) -> Self {
        let mut positions = positions;
        positions.sort_unstable();
        positions.dedup();
        BloomDelta {
            positions,
            filter_bits,
        }
    }

    /// The flipped positions.
    pub fn positions(&self) -> &[u32] {
        &self.positions
    }

    /// Number of flipped bits.
    pub fn len(&self) -> usize {
        self.positions.len()
    }

    /// True if nothing changed.
    pub fn is_empty(&self) -> bool {
        self.positions.is_empty()
    }

    /// Applies the delta to `filter`, flipping each listed bit.
    ///
    /// Applying the same delta twice is an involution (it undoes itself), which
    /// is exactly the XOR semantics of "changed bits".
    ///
    /// # Panics
    /// Panics if the filter's size differs from the delta's.
    pub fn apply(&self, filter: &mut BloomFilter) {
        assert_eq!(
            filter.bits() as u32,
            self.filter_bits,
            "delta was computed for a filter of different size"
        );
        for &pos in &self.positions {
            let pos = pos as usize;
            if filter.get_bit(pos) {
                filter.clear_bit(pos);
            } else {
                filter.set_bit(pos);
            }
        }
    }

    /// Bits needed to encode a single position: `ceil(log2(filter_bits))`.
    ///
    /// For the paper's 1200-bit filter this is 11 bits.
    pub fn bits_per_position(&self) -> u32 {
        if self.filter_bits <= 1 {
            1
        } else {
            32 - (self.filter_bits - 1).leading_zeros()
        }
    }

    /// Total encoded size of this delta in bits (positions only, as the paper
    /// counts it).
    pub fn encoded_bits(&self) -> u64 {
        self.positions.len() as u64 * u64::from(self.bits_per_position())
    }

    /// Total encoded size in bytes, rounded up (what a real wire format would
    /// occupy at minimum).
    pub fn encoded_bytes(&self) -> u64 {
        self.encoded_bits().div_ceil(8)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::filter::BloomParams;

    #[test]
    fn delta_between_snapshots_reconstructs_the_new_filter() {
        let mut old = BloomFilter::paper_default();
        old.insert("madonna");
        old.insert("prayer");
        let mut new = old.clone();
        new.insert("vogue");

        let delta = BloomDelta::between(&old, &new);
        assert!(!delta.is_empty());

        let mut reconstructed = old.clone();
        delta.apply(&mut reconstructed);
        assert_eq!(reconstructed, new);
    }

    #[test]
    fn applying_twice_is_identity() {
        let mut old = BloomFilter::paper_default();
        old.insert("a");
        let mut new = old.clone();
        new.insert("b");
        let delta = BloomDelta::between(&old, &new);

        let mut f = old.clone();
        delta.apply(&mut f);
        delta.apply(&mut f);
        assert_eq!(f, old);
    }

    #[test]
    fn empty_delta_for_identical_filters() {
        let f = BloomFilter::paper_default();
        let delta = BloomDelta::between(&f, &f.clone());
        assert!(delta.is_empty());
        assert_eq!(delta.encoded_bits(), 0);
    }

    #[test]
    fn paper_footnote_size_bound_holds() {
        // Adding one filename (3 keywords × 5 probes) flips at most 15 bits;
        // the paper's bound of 12 assumes its own k; what we verify here is the
        // 11-bits-per-position claim and that a single-filename update stays in
        // the tens-of-bits range, i.e. negligible vs. a full 1200-bit push.
        let mut old = BloomFilter::paper_default();
        for i in 0..49 {
            old.insert(&format!("kw-a-{i}"));
            old.insert(&format!("kw-b-{i}"));
            old.insert(&format!("kw-c-{i}"));
        }
        let mut new = old.clone();
        new.insert("fresh-one");
        new.insert("fresh-two");
        new.insert("fresh-three");
        let delta = BloomDelta::between(&old, &new);
        assert_eq!(delta.bits_per_position(), 11, "1200-bit filter needs 11 bits/position");
        assert!(delta.len() <= 15, "at most k × keywords bits can flip, got {}", delta.len());
        assert!(delta.encoded_bits() <= 15 * 11);
        assert!(delta.encoded_bits() < 1200, "delta must beat retransmitting the filter");
    }

    #[test]
    fn bits_per_position_general_formula() {
        let d = BloomDelta::from_positions(vec![], 1200);
        assert_eq!(d.bits_per_position(), 11);
        assert_eq!(BloomDelta::from_positions(vec![], 1024).bits_per_position(), 10);
        assert_eq!(BloomDelta::from_positions(vec![], 1025).bits_per_position(), 11);
        assert_eq!(BloomDelta::from_positions(vec![], 2).bits_per_position(), 1);
        assert_eq!(BloomDelta::from_positions(vec![], 1).bits_per_position(), 1);
    }

    #[test]
    fn from_positions_sorts_and_dedups() {
        let d = BloomDelta::from_positions(vec![9, 3, 9, 1], 100);
        assert_eq!(d.positions(), &[1, 3, 9]);
        assert_eq!(d.encoded_bytes(), (3u64 * 7).div_ceil(8));
    }

    #[test]
    #[should_panic(expected = "different size")]
    fn applying_to_wrong_size_filter_panics() {
        let small = BloomFilter::new(BloomParams::new(100, 3));
        let delta = BloomDelta::from_positions(vec![5], 1200);
        let mut target = small;
        delta.apply(&mut target);
    }
}
