//! Double hashing for Bloom filters.
//!
//! Kirsch & Mitzenmacher showed that deriving the `k` probe positions as
//! `h1 + i·h2 (mod m)` from two independent base hashes is asymptotically as
//! good as `k` independent hash functions. We derive the two base hashes from a
//! single 128-bit FNV-1a-style digest of the element, so hashing stays
//! dependency-free, fast and — crucially for the reproduction — fully
//! deterministic across runs and platforms.

/// The two base hashes of an element, from which all probe positions derive.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ElementHashes {
    h1: u64,
    h2: u64,
}

impl ElementHashes {
    /// Hashes an arbitrary byte string.
    pub fn of_bytes(data: &[u8]) -> Self {
        // 128-bit FNV-1a split into two 64-bit lanes with different offsets,
        // then finalised with a SplitMix64-style avalanche so short keywords
        // still spread over the whole range.
        let mut a: u64 = 0xcbf2_9ce4_8422_2325;
        let mut b: u64 = 0x6c62_272e_07bb_0142;
        for &byte in data {
            a ^= u64::from(byte);
            a = a.wrapping_mul(0x0000_0100_0000_01B3);
            b ^= u64::from(byte).rotate_left(17);
            b = b.wrapping_mul(0x0000_0100_0000_01B3);
        }
        ElementHashes {
            h1: avalanche(a),
            h2: avalanche(b) | 1, // force h2 odd so it is coprime with power-of-two m
        }
    }

    /// Hashes a string element (the common case: a keyword).
    pub fn of_str(s: &str) -> Self {
        Self::of_bytes(s.as_bytes())
    }

    /// The `i`-th probe position for a filter of `m` bits.
    pub fn position(&self, i: usize, m: usize) -> usize {
        debug_assert!(m > 0, "filter must have at least one bit");
        let combined = self.h1.wrapping_add(self.h2.wrapping_mul(i as u64));
        (combined % m as u64) as usize
    }

    /// All `k` probe positions for a filter of `m` bits.
    pub fn positions(&self, k: usize, m: usize) -> impl Iterator<Item = usize> + '_ {
        (0..k).map(move |i| self.position(i, m))
    }
}

fn avalanche(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn hashing_is_deterministic() {
        let a = ElementHashes::of_str("gnutella");
        let b = ElementHashes::of_str("gnutella");
        assert_eq!(a, b);
    }

    #[test]
    fn different_elements_hash_differently() {
        let a = ElementHashes::of_str("keyword-a");
        let b = ElementHashes::of_str("keyword-b");
        assert_ne!(a, b);
    }

    #[test]
    fn positions_are_in_range() {
        let h = ElementHashes::of_str("some-keyword");
        for m in [7usize, 64, 1200, 4093] {
            for p in h.positions(16, m) {
                assert!(p < m);
            }
        }
    }

    #[test]
    fn positions_spread_over_the_filter() {
        // Hash 1000 distinct keywords into a 1200-bit filter with one probe each;
        // the occupied positions should cover a substantial fraction of the range.
        let m = 1200;
        let occupied: HashSet<usize> = (0..1000)
            .map(|i| ElementHashes::of_str(&format!("kw{i}")).position(0, m))
            .collect();
        assert!(
            occupied.len() > 600,
            "expected wide spread, got {} distinct positions",
            occupied.len()
        );
    }

    #[test]
    fn probe_sequences_differ_between_elements() {
        let m = 1200;
        let k = 5;
        let a: Vec<usize> = ElementHashes::of_str("alpha").positions(k, m).collect();
        let b: Vec<usize> = ElementHashes::of_str("beta").positions(k, m).collect();
        assert_ne!(a, b);
    }

    #[test]
    fn empty_element_is_valid() {
        let h = ElementHashes::of_str("");
        assert!(h.position(0, 1200) < 1200);
    }
}
