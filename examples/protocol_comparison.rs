//! Protocol comparison: the paper's four approaches side by side on one
//! substrate — a miniature of Figures 2–4.
//!
//! ```text
//! cargo run --example protocol_comparison --release
//! ```
//!
//! Declares the whole grid — one scenario, four protocols, three query
//! counts — as an `ExperimentPlan` and lets the `Runner` schedule it: the
//! substrate is built once and shared by all twelve runs, so every curve is
//! measured over the identical system. Prints the three metric tables plus
//! the headline comparisons the paper quotes in §5.2.

use locaware_suite::prelude::*;

fn main() {
    let scenario = Scenario::small(300).with_seed(7).with_name("comparison");
    let query_counts = [300usize, 600, 900];
    let protocols = ProtocolKind::PAPER_SET;

    let plan = ExperimentPlan::new()
        .scenario(scenario.clone())
        .protocols(protocols)
        .query_counts(query_counts);
    let outcome = Runner::new().run(&plan).expect("grid lists every dimension");
    assert_eq!(
        outcome.substrates_built, 1,
        "all {} runs share one substrate",
        outcome.len()
    );

    let mut fig2 = Figure::new("Download distance vs queries", "avg download distance (ms)");
    let mut fig3 = Figure::new("Search traffic vs queries", "messages per query");
    let mut fig4 = Figure::new("Success rate vs queries", "success rate");

    for point in &outcome.points {
        let x = point.queries as u64;
        fig2.push(
            point.protocol.label(),
            SeriesPoint { queries: x, value: point.report.avg_download_distance_ms() },
        );
        fig3.push(
            point.protocol.label(),
            SeriesPoint { queries: x, value: point.report.avg_messages_per_query() },
        );
        fig4.push(
            point.protocol.label(),
            SeriesPoint { queries: x, value: point.report.success_rate() },
        );
    }

    println!("{}", fig2.to_table());
    println!("{}", fig3.to_table());
    println!("{}", fig4.to_table());

    // Headline comparisons at the largest query count.
    let x = *query_counts.last().unwrap() as u64;
    let locaware_traffic = fig3.value_at("locaware", x).unwrap();
    let flooding_traffic = fig3.value_at("flooding", x).unwrap();
    let locaware_success = fig4.value_at("locaware", x).unwrap();
    let dicas_success = fig4.value_at("dicas", x).unwrap();
    let dicas_keys_success = fig4.value_at("dicas-keys", x).unwrap();

    println!("At {x} queries:");
    println!(
        "  - Locaware cuts search traffic by {:.1}% vs flooding (paper: ~98%).",
        100.0 * (1.0 - locaware_traffic / flooding_traffic)
    );
    println!(
        "  - Locaware's success rate is {:+.1}% vs Dicas (paper: +23%) and {:+.1}% vs Dicas-Keys (paper: +33%).",
        100.0 * (locaware_success / dicas_success - 1.0),
        100.0 * (locaware_success / dicas_keys_success - 1.0)
    );
}
