//! Flash crowd: what Locaware's location-aware caching does when one file
//! suddenly becomes wildly popular.
//!
//! ```text
//! cargo run --example flash_crowd --release
//! ```
//!
//! The paper motivates Locaware with exactly this workload: "most queries
//! request a few popular files", the popular file becomes naturally
//! well-replicated as requestors finish their downloads, and Locaware's
//! response indexes record those new replicas *with their locIds* so later
//! requestors are pointed at a copy in their own locality.
//!
//! The `Scenario::flash_crowd` preset captures the regime with a first-class
//! burst schedule: the Zipf head behaves like a sudden hit (α = 1.5) and,
//! after a steady lead-in at the paper's base rate, arrivals burst at 25×
//! inside a bounded window. Locaware and Flooding run over the same substrate
//! via one `ExperimentPlan`, and the tables below show how the download
//! distance and the provider pool evolve quarter by quarter as replication
//! kicks in.

use locaware_suite::locaware_workload::ArrivalSchedule;
use locaware_suite::prelude::*;

fn main() {
    let scenario = Scenario::flash_crowd(300);
    let queries = 1200usize;
    let ArrivalSchedule::Burst {
        multiplier,
        start_secs,
        duration_secs,
    } = scenario.config().arrival_schedule
    else {
        unreachable!("the flash-crowd preset carries a burst schedule");
    };
    println!(
        "Flash-crowd workload ('{}'): Zipf exponent {}, {multiplier}x arrival burst \
         from t={start_secs}s for {duration_secs}s, {} queries over {} peers\n",
        scenario.name(),
        scenario.config().zipf_exponent,
        queries,
        scenario.config().peers
    );

    let plan = ExperimentPlan::new()
        .scenario(scenario.clone())
        .protocols([ProtocolKind::Locaware, ProtocolKind::Flooding])
        .query_count(queries);
    let outcome = Runner::new().run(&plan).expect("plan lists every dimension");
    let locaware = outcome
        .report(scenario.name(), ProtocolKind::Locaware, queries, 0)
        .expect("locaware ran");
    let flooding = outcome
        .report(scenario.name(), ProtocolKind::Flooding, queries, 0)
        .expect("flooding ran");

    let mut table = Table::new([
        "quarter",
        "locaware distance (ms)",
        "flooding distance (ms)",
        "locaware locality matches",
        "locaware success",
    ]);
    let quarter = queries / 4;
    for q in 0..4 {
        let lo = locaware.metrics.prefix((q + 1) * quarter).tail_window(quarter);
        let fl = flooding.metrics.prefix((q + 1) * quarter).tail_window(quarter);
        table.push_row([
            format!("Q{}", q + 1),
            format!("{:.1}", lo.avg_download_distance_ms()),
            format!("{:.1}", fl.avg_download_distance_ms()),
            format!("{:.1}%", lo.locality_match_rate() * 100.0),
            format!("{:.1}%", lo.success_rate() * 100.0),
        ]);
    }
    println!("{}", table.render());

    let initial_replicas = scenario.config().peers * scenario.config().files_per_peer;
    println!(
        "Natural replication: the system started with {} file copies and ended the Locaware \
         run with {} ({} downloads served).",
        initial_replicas,
        locaware.total_file_replicas,
        locaware.total_file_replicas - initial_replicas
    );
    println!(
        "Locaware's average download distance over the whole run: {:.1} ms vs {:.1} ms for flooding \
         ({:.1}% closer).",
        locaware.avg_download_distance_ms(),
        flooding.avg_download_distance_ms(),
        100.0 * (1.0 - locaware.avg_download_distance_ms() / flooding.avg_download_distance_ms())
    );
    println!(
        "Share of Locaware downloads served from a provider in the requestor's own locality: {:.1}%.",
        locaware.locality_match_rate() * 100.0
    );
}
