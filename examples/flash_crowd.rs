//! Flash crowd: what Locaware's location-aware caching does when one file
//! suddenly becomes wildly popular.
//!
//! ```text
//! cargo run --example flash_crowd --release
//! ```
//!
//! The paper motivates Locaware with exactly this workload: "most queries
//! request a few popular files", the popular file becomes naturally
//! well-replicated as requestors finish their downloads, and Locaware's
//! response indexes record those new replicas *with their locIds* so later
//! requestors are pointed at a copy in their own locality.
//!
//! The example sharpens the Zipf skew (α = 1.4, so the head of the
//! distribution behaves like a flash crowd), runs Locaware and Flooding over
//! the same substrate, and prints how the download distance and the provider
//! pool evolve quarter by quarter.

use locaware_suite::prelude::*;

fn main() {
    let mut config = SimulationConfig::small(300);
    config.seed = 99;
    config.zipf_exponent = 1.4; // flash-crowd skew: the head files dominate
    let simulation = Simulation::build(config);

    let queries = 1200usize;
    println!(
        "Flash-crowd workload: Zipf exponent {}, {} queries over {} peers\n",
        simulation.config().zipf_exponent,
        queries,
        simulation.config().peers
    );

    let locaware = simulation.run(ProtocolKind::Locaware, queries);
    let flooding = simulation.run(ProtocolKind::Flooding, queries);

    let mut table = Table::new([
        "quarter",
        "locaware distance (ms)",
        "flooding distance (ms)",
        "locaware locality matches",
        "locaware success",
    ]);
    let quarter = queries / 4;
    for q in 0..4 {
        let lo = locaware.metrics.prefix((q + 1) * quarter).tail_window(quarter);
        let fl = flooding.metrics.prefix((q + 1) * quarter).tail_window(quarter);
        table.push_row([
            format!("Q{}", q + 1),
            format!("{:.1}", lo.avg_download_distance_ms()),
            format!("{:.1}", fl.avg_download_distance_ms()),
            format!("{:.1}%", lo.locality_match_rate() * 100.0),
            format!("{:.1}%", lo.success_rate() * 100.0),
        ]);
    }
    println!("{}", table.render());

    println!(
        "Natural replication: the system started with {} file copies and ended the Locaware \
         run with {} ({} downloads served).",
        simulation.config().peers * simulation.config().files_per_peer,
        locaware.total_file_replicas,
        locaware.total_file_replicas - simulation.config().peers * simulation.config().files_per_peer
    );
    println!(
        "Locaware's average download distance over the whole run: {:.1} ms vs {:.1} ms for flooding \
         ({:.1}% closer).",
        locaware.avg_download_distance_ms(),
        flooding.avg_download_distance_ms(),
        100.0 * (1.0 - locaware.avg_download_distance_ms() / flooding.avg_download_distance_ms())
    );
    println!(
        "Share of Locaware downloads served from a provider in the requestor's own locality: {:.1}%.",
        locaware.locality_match_rate() * 100.0
    );
}
