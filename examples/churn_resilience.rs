//! Churn resilience: what happens to index caching when peers come and go.
//!
//! ```text
//! cargo run --example churn_resilience --release
//! ```
//!
//! The paper's evaluation runs on a static overlay, but §4.1.2 explicitly
//! worries about dynamics: "Given the high dynamicity of peers, studies in
//! Gnutella showed that cached objects should be kept for a small amount of
//! time to avoid sending stale responses". This example turns on the
//! session-based churn model (an extension shipped with the reproduction),
//! compares Locaware and Dicas under increasing churn intensity, and shows why
//! Locaware's multiple-providers-per-index design degrades more gracefully
//! than a single-provider cache: when the cached provider of a Dicas entry has
//! left, the response is stale and the download fails, whereas a Locaware
//! response still lists other (possibly online) replicas.

use locaware_suite::prelude::*;

fn main() {
    let queries = 800usize;
    let scenarios: [(&str, ChurnConfig); 3] = [
        ("no churn", ChurnConfig::disabled()),
        (
            "mild churn",
            ChurnConfig {
                mean_session_secs: 1800.0,
                mean_offline_secs: 600.0,
                churning_fraction: 0.3,
            },
        ),
        (
            "heavy churn",
            ChurnConfig {
                mean_session_secs: 600.0,
                mean_offline_secs: 600.0,
                churning_fraction: 0.6,
            },
        ),
    ];

    let mut table = Table::new([
        "scenario",
        "locaware success",
        "dicas success",
        "locaware distance (ms)",
        "dicas distance (ms)",
    ]);

    for (name, churn) in scenarios {
        let mut config = SimulationConfig::small(300);
        config.seed = 31;
        config.churn = churn;
        let simulation = Simulation::build(config);

        let locaware = simulation.run(ProtocolKind::Locaware, queries);
        let dicas = simulation.run(ProtocolKind::Dicas, queries);

        table.push_row([
            name.to_string(),
            format!("{:.1}%", locaware.success_rate() * 100.0),
            format!("{:.1}%", dicas.success_rate() * 100.0),
            format!("{:.1}", locaware.avg_download_distance_ms()),
            format!("{:.1}", dicas.avg_download_distance_ms()),
        ]);
    }

    println!("Effect of churn on index caching ({queries} queries, 300 peers)\n");
    println!("{}", table.render());
    println!(
        "Locaware keeps several provider entries per cached filename, so a response assembled \
         from its index can still point at an online replica after the original provider left; \
         a single-provider cache has nothing to fall back on."
    );
}
