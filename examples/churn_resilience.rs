//! Churn resilience: what happens to index caching when peers come and go.
//!
//! ```text
//! cargo run --example churn_resilience --release
//! ```
//!
//! The paper's evaluation runs on a static overlay, but §4.1.2 explicitly
//! worries about dynamics: "Given the high dynamicity of peers, studies in
//! Gnutella showed that cached objects should be kept for a small amount of
//! time to avoid sending stale responses". This example compares Locaware and
//! Dicas across three scenarios of increasing churn intensity — a static
//! overlay, a mild session-churn regime built with `ScenarioBuilder`, and the
//! `Scenario::churn_storm` preset — all in a single `ExperimentPlan`, and
//! shows why Locaware's multiple-providers-per-index design degrades more
//! gracefully than a single-provider cache: when the cached provider of a
//! Dicas entry has left, the response is stale and the download fails,
//! whereas a Locaware response still lists other (possibly online) replicas.

use locaware_suite::prelude::*;

fn main() {
    let peers = 300usize;
    let queries = 800usize;

    let static_overlay = Scenario::small(peers).with_seed(31).with_name("no-churn");
    let mild = Scenario::builder("mild-churn")
        .peers(peers)
        .seed(31)
        .churn(ChurnConfig {
            mean_session_secs: 1800.0,
            mean_offline_secs: 600.0,
            churning_fraction: 0.3,
        })
        .build()
        .expect("mild churn scenario validates");
    // The preset keeps its own seed: churn-storm is a named regime, and its
    // numbers should be reproducible independently of this example.
    let storm = Scenario::churn_storm(peers);

    let scenarios = [static_overlay, mild, storm];
    let plan = ExperimentPlan::new()
        .scenarios(scenarios.iter().cloned())
        .protocols([ProtocolKind::Locaware, ProtocolKind::Dicas])
        .query_count(queries);
    let outcome = Runner::new().run(&plan).expect("plan lists every dimension");
    assert_eq!(
        outcome.substrates_built,
        scenarios.len(),
        "one substrate per scenario, shared by both protocols"
    );

    let mut table = Table::new([
        "scenario",
        "locaware success",
        "dicas success",
        "locaware distance (ms)",
        "dicas distance (ms)",
    ]);

    for scenario in &scenarios {
        let locaware = outcome
            .report(scenario.name(), ProtocolKind::Locaware, queries, 0)
            .expect("locaware ran");
        let dicas = outcome
            .report(scenario.name(), ProtocolKind::Dicas, queries, 0)
            .expect("dicas ran");
        table.push_row([
            scenario.name().to_string(),
            format!("{:.1}%", locaware.success_rate() * 100.0),
            format!("{:.1}%", dicas.success_rate() * 100.0),
            format!("{:.1}", locaware.avg_download_distance_ms()),
            format!("{:.1}", dicas.avg_download_distance_ms()),
        ]);
    }

    println!("Effect of churn on index caching ({queries} queries, {peers} peers)\n");
    println!("{}", table.render());
    println!(
        "Locaware keeps several provider entries per cached filename, so a response assembled \
         from its index can still point at an online replica after the original provider left; \
         a single-provider cache has nothing to fall back on."
    );
}
