//! Quickstart: build a Locaware simulation, run it, and read the results.
//!
//! ```text
//! cargo run --example quickstart --release
//! ```
//!
//! This walks through the library's three steps:
//!  1. describe the system with a [`SimulationConfig`] (the defaults are the
//!     paper's §5.1 setup; here we scale it down so the example runs in a
//!     couple of seconds),
//!  2. build the substrate (underlay, overlay, catalog, placement) with
//!     [`Simulation::build`],
//!  3. run a protocol and inspect the [`SimulationReport`].

use locaware_suite::prelude::*;

fn main() {
    // 1. Configuration: 300 peers, everything else scaled from the paper.
    let mut config = SimulationConfig::small(300);
    config.seed = 2024;
    println!(
        "Simulating {} peers, {} files, {} keywords, TTL {}, {} landmarks\n",
        config.peers, config.file_pool, config.keyword_pool, config.ttl, config.landmarks
    );

    // 2. Build the substrate once. Every protocol run over it sees exactly the
    //    same peers, files, localities and query schedule.
    let simulation = Simulation::build(config);
    println!(
        "Overlay: {} peers, average degree {:.2}, connected: {}",
        simulation.overlay().len(),
        simulation.overlay().average_degree(),
        simulation.overlay().is_connected()
    );
    let distinct_localities = {
        let mut locs: Vec<_> = simulation.loc_ids().to_vec();
        locs.sort_unstable();
        locs.dedup();
        locs.len()
    };
    println!(
        "Localities: {} landmarks partition the peers into {} distinct locIds\n",
        simulation.landmarks().len(),
        distinct_localities
    );

    // 3. Run Locaware for 1000 queries and print the report.
    let report = simulation.run(ProtocolKind::Locaware, 1000);
    println!("{}", report.summary_table().render());

    // The same substrate can answer "what would flooding have done?" directly.
    let flooding = simulation.run(ProtocolKind::Flooding, 1000);
    println!(
        "Locaware used {:.1} messages/query where flooding used {:.1} ({:.1}% less traffic).",
        report.avg_messages_per_query(),
        flooding.avg_messages_per_query(),
        100.0 * (1.0 - report.avg_messages_per_query() / flooding.avg_messages_per_query())
    );
    println!(
        "Locaware's average download distance was {:.1} ms vs {:.1} ms under flooding.",
        report.avg_download_distance_ms(),
        flooding.avg_download_distance_ms()
    );
}
