//! Quickstart: describe a scenario, run an experiment, read the results.
//!
//! ```text
//! cargo run --example quickstart --release
//! ```
//!
//! This walks through the library's experiment API in three steps:
//!
//!  1. **Scenario** — describe the system with a [`Scenario`]. The named
//!     presets ([`Scenario::paper_defaults`], [`Scenario::small`],
//!     [`Scenario::flash_crowd`], [`Scenario::churn_storm`],
//!     [`Scenario::regional_hotspot`]) are validated, seeded configurations;
//!     custom ones go through the fallible [`ScenarioBuilder`], which returns
//!     a typed [`ConfigError`] instead of panicking on inconsistent inputs.
//!  2. **Plan** — declare what to measure with an [`ExperimentPlan`]:
//!     scenarios × protocols × query counts × repetitions.
//!  3. **Run** — hand the plan to a [`Runner`]. It builds the substrate of
//!     each (scenario, repetition) point exactly once, shares it immutably
//!     across every protocol and query count (that identical-substrate rule
//!     is what makes the paper's Figures 2–4 comparable), and fans the grid
//!     out over worker threads. Each [`SimulationReport`] in the outcome
//!     carries the per-query records behind the figures.
//!
//! The scale here is ~200 peers so the example finishes in a couple of
//! seconds; swap in `Scenario::paper_defaults()` for the 1000-peer setup.

use locaware_suite::prelude::*;

fn main() {
    // 1. Scenario: the paper's setup scaled to 200 peers, with an explicit
    //    seed so reruns are bit-for-bit identical. Builder errors are real
    //    errors — an invalid knob would surface here, not as a panic later.
    let scenario = match Scenario::builder("quickstart").peers(200).seed(2024).build() {
        Ok(scenario) => scenario,
        Err(problem) => {
            eprintln!("invalid scenario: {problem}");
            std::process::exit(1);
        }
    };
    let config = scenario.config();
    println!(
        "Scenario '{}': {} peers, {} files, {} keywords, TTL {}, {} landmarks\n",
        scenario.name(),
        config.peers,
        config.file_pool,
        config.keyword_pool,
        config.ttl,
        config.landmarks
    );

    // The substrate is inspectable on its own: peers, overlay wiring,
    // localities. Every protocol run over this scenario sees exactly this
    // system.
    let substrate = scenario.substrate();
    println!(
        "Overlay: {} peers, average degree {:.2}, connected: {}",
        substrate.overlay().len(),
        substrate.overlay().average_degree(),
        substrate.overlay().is_connected()
    );
    let distinct_localities = {
        let mut locs: Vec<_> = substrate.loc_ids().to_vec();
        locs.sort_unstable();
        locs.dedup();
        locs.len()
    };
    println!(
        "Localities: {} landmarks partition the peers into {} distinct locIds\n",
        substrate.landmarks().len(),
        distinct_localities
    );

    // 2. Plan: Locaware vs the flooding baseline, 800 queries each.
    let queries = 800usize;
    let plan = ExperimentPlan::new()
        .scenario(scenario.clone())
        .protocols([ProtocolKind::Locaware, ProtocolKind::Flooding])
        .query_count(queries);

    // 3. Run. The runner builds the substrate once and runs both protocols
    //    over it; the outcome records how many builds actually happened.
    let outcome = Runner::new().run(&plan).expect("the plan lists every dimension");
    assert_eq!(outcome.substrates_built, 1, "both protocols share one substrate");

    let report = outcome
        .report(scenario.name(), ProtocolKind::Locaware, queries, 0)
        .expect("locaware ran");
    let flooding = outcome
        .report(scenario.name(), ProtocolKind::Flooding, queries, 0)
        .expect("flooding ran");

    println!("{}", report.summary_table().render());
    println!(
        "Locaware used {:.1} messages/query where flooding used {:.1} ({:.1}% less traffic).",
        report.avg_messages_per_query(),
        flooding.avg_messages_per_query(),
        100.0 * (1.0 - report.avg_messages_per_query() / flooding.avg_messages_per_query())
    );
    println!(
        "Locaware's average download distance was {:.1} ms vs {:.1} ms under flooding.",
        report.avg_download_distance_ms(),
        flooding.avg_download_distance_ms()
    );
}
